//! Regenerates the `overload` exhibit (beyond the paper: the pipeline
//! under overload and export faults) and fails the process when any row
//! violates the conservation identity `offered == delivered + dropped` —
//! the CI chaos-smoke gate. See `experiments::figs::overload`.
use experiments::output::Cell;
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running overload (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    let tables = figs::overload::run(&cfg);
    output::emit(&tables, &cfg.out_dir);
    // Extend the repository-level perf trajectory next to the sources.
    let emitted = cfg.out_dir.join("BENCH_overload.json");
    match std::fs::copy(&emitted, "BENCH_overload.json") {
        Ok(_) => println!("   -> BENCH_overload.json"),
        Err(e) => eprintln!("   !! failed to copy {}: {e}", emitted.display()),
    }

    // Conservation gate: every shed unit must be on a ledger. The run
    // itself asserts the per-scenario invariants; this re-derives the
    // identity from the emitted table so the gate survives refactors of
    // the assertions above it.
    let mut violations = 0usize;
    for row in tables[0].rows() {
        let (scenario, policy) = match (&row[1], &row[2]) {
            (Cell::Text(s), Cell::Text(p)) => (s.clone(), p.clone()),
            _ => (String::from("?"), String::from("?")),
        };
        if let (Cell::Int(offered), Cell::Int(delivered), Cell::Int(dropped)) =
            (&row[5], &row[6], &row[7])
        {
            if *offered != *delivered + *dropped {
                eprintln!(
                    "conservation violation in {scenario}/{policy}: \
                     offered {offered} != delivered {delivered} + dropped {dropped}"
                );
                violations += 1;
            }
        } else {
            eprintln!("malformed overload row for {scenario}/{policy}");
            violations += 1;
        }
    }
    if violations > 0 {
        std::process::exit(2);
    }
    println!("all overload rows conserve offered == delivered + dropped");
}
