//! Regenerates the `hotpath` exhibit (beyond the paper: scalar vs
//! batched single-core ingestion). See `experiments::figs::hotpath`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!("running hotpath (scale {}, seed {})\n", cfg.scale, cfg.seed);
    output::emit(&figs::hotpath::run(&cfg), &cfg.out_dir);
    // Extend the repository-level perf trajectory next to the sources.
    let emitted = cfg.out_dir.join("BENCH_hotpath.json");
    match std::fs::copy(&emitted, "BENCH_hotpath.json") {
        Ok(_) => println!("   -> BENCH_hotpath.json"),
        Err(e) => eprintln!("   !! failed to copy {}: {e}", emitted.display()),
    }
}
