//! Regenerates the `table01_traces` exhibit. See `experiments::figs::table01_traces`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running table01_traces (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::table01_traces::run(&cfg), &cfg.out_dir);
}
