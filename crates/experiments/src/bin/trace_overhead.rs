//! Regenerates the `trace_overhead` exhibit (beyond the paper: what the
//! flight recorder plus 1-in-1024 flow tracing cost on the hot path) and
//! fails the process when any path drops below the smoke floor — the CI
//! regression gate. See `experiments::figs::trace_overhead`.
use experiments::output::Cell;
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running trace_overhead (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    let tables = figs::trace_overhead::run(&cfg);
    output::emit(&tables, &cfg.out_dir);
    // Extend the repository-level perf trajectory next to the sources.
    let emitted = cfg.out_dir.join("BENCH_trace.json");
    match std::fs::copy(&emitted, "BENCH_trace.json") {
        Ok(_) => println!("   -> BENCH_trace.json"),
        Err(e) => eprintln!("   !! failed to copy {}: {e}", emitted.display()),
    }

    // Regression gate: every path must keep at least SMOKE_FLOOR of its
    // bare throughput with the recorder and tracer attached.
    let mut worst = f64::INFINITY;
    for row in tables[0].rows() {
        if let Cell::Float(ratio) = &row[7] {
            worst = worst.min(*ratio);
        }
    }
    if worst < figs::trace_overhead::SMOKE_FLOOR {
        eprintln!(
            "trace overhead regression: worst traced/bare ratio {:.3} \
             below floor {:.2}",
            worst,
            figs::trace_overhead::SMOKE_FLOOR
        );
        std::process::exit(2);
    }
    println!(
        "worst traced/bare ratio {:.3} (floor {:.2})",
        worst,
        figs::trace_overhead::SMOKE_FLOOR
    );
}
