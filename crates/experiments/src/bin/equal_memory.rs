//! Regenerates the `equal_memory` exhibit (beyond the paper: the §IV
//! equal-memory comparison over the full monitor zoo × trace-regime
//! matrix). See `experiments::figs::equal_memory`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running equal_memory (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::equal_memory::run(&cfg), &cfg.out_dir);
    // Extend the repository-level perf trajectory next to the sources.
    let emitted = cfg.out_dir.join("BENCH_equal_memory.json");
    match std::fs::copy(&emitted, "BENCH_equal_memory.json") {
        Ok(_) => println!("   -> BENCH_equal_memory.json"),
        Err(e) => eprintln!("   !! failed to copy {}: {e}", emitted.display()),
    }
}
