//! Regenerates the `fig11_throughput` exhibit. See `experiments::figs::fig11_throughput`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running fig11_throughput (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::fig11_throughput::run(&cfg), &cfg.out_dir);
}
