//! Regenerates the `ablation_elastic` exhibit. See `experiments::figs::ablation_elastic`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running ablation_elastic (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::ablation_elastic::run(&cfg), &cfg.out_dir);
}
