//! Regenerates the `ablation_digest` exhibit. See `experiments::figs::ablation_digest`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running ablation_digest (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::ablation_digest::run(&cfg), &cfg.out_dir);
}
