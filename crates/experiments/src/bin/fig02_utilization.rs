//! Regenerates the `fig02_utilization` exhibit. See `experiments::figs::fig02_utilization`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running fig02_utilization (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::fig02_utilization::run(&cfg), &cfg.out_dir);
}
