//! Regenerates the `obs_overhead` exhibit (beyond the paper: what a live
//! metrics registry costs on the hot path) and fails the process when any
//! path drops below the smoke floor — the CI regression gate. See
//! `experiments::figs::obs_overhead`.
use experiments::output::Cell;
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running obs_overhead (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    let tables = figs::obs_overhead::run(&cfg);
    output::emit(&tables, &cfg.out_dir);
    // Extend the repository-level perf trajectory next to the sources.
    let emitted = cfg.out_dir.join("BENCH_obs.json");
    match std::fs::copy(&emitted, "BENCH_obs.json") {
        Ok(_) => println!("   -> BENCH_obs.json"),
        Err(e) => eprintln!("   !! failed to copy {}: {e}", emitted.display()),
    }

    // Regression gate: every path must keep at least SMOKE_FLOOR of its
    // bare throughput with the registry attached.
    let mut worst = f64::INFINITY;
    for row in tables[0].rows() {
        if let Cell::Float(ratio) = &row[7] {
            worst = worst.min(*ratio);
        }
    }
    if worst < figs::obs_overhead::SMOKE_FLOOR {
        eprintln!(
            "obs overhead regression: worst instrumented/bare ratio {:.3} \
             below floor {:.2}",
            worst,
            figs::obs_overhead::SMOKE_FLOOR
        );
        std::process::exit(2);
    }
    println!(
        "worst instrumented/bare ratio {:.3} (floor {:.2})",
        worst,
        figs::obs_overhead::SMOKE_FLOOR
    );
}
