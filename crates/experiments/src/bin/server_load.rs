//! Regenerates the `server_load` exhibit (beyond the paper: the
//! collector daemon under concurrent query load) and fails the process
//! when any row violates ledger conservation or the health check — the
//! CI server-smoke gate. See `experiments::figs::server_load`.
use experiments::output::Cell;
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running server_load (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    let tables = figs::server_load::run(&cfg);
    output::emit(&tables, &cfg.out_dir);
    let emitted = cfg.out_dir.join("BENCH_server.json");
    match std::fs::copy(&emitted, "BENCH_server.json") {
        Ok(_) => println!("   -> BENCH_server.json"),
        Err(e) => eprintln!("   !! failed to copy {}: {e}", emitted.display()),
    }

    // Gates re-derived from the emitted table (so they survive refactors
    // of the assertions inside the exhibit): the drop ledger must
    // conserve offered == processed + dropped in every row, /healthz
    // must have answered 200, and every reader tier must have completed
    // queries.
    let mut violations = 0usize;
    for row in tables[0].rows() {
        let readers = match &row[0] {
            Cell::Int(n) => *n,
            _ => -1,
        };
        match (&row[3], &row[4], &row[5]) {
            (Cell::Int(offered), Cell::Int(processed), Cell::Int(dropped)) => {
                if *offered != *processed + *dropped {
                    eprintln!(
                        "conservation violation at {readers} readers: \
                         offered {offered} != processed {processed} + dropped {dropped}"
                    );
                    violations += 1;
                }
            }
            _ => {
                eprintln!("malformed server_load row at {readers} readers");
                violations += 1;
            }
        }
        if row[12] != Cell::Int(1) {
            eprintln!("health check failed at {readers} readers");
            violations += 1;
        }
        if readers > 0 && row[8] == Cell::Int(0) {
            eprintln!("{readers} readers completed no requests");
            violations += 1;
        }
    }
    if violations > 0 {
        std::process::exit(2);
    }
    println!("all server_load rows conserve the ledger and stay healthy");
}
