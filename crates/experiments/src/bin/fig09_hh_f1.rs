//! Regenerates the `fig09_hh_f1` exhibit. See `experiments::figs::fig09_hh_f1`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running fig09_hh_f1 (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::fig09_hh_f1::run(&cfg), &cfg.out_dir);
}
