//! Regenerates the `fig07_cardinality` exhibit. See `experiments::figs::fig07_cardinality`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running fig07_cardinality (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::fig07_cardinality::run(&cfg), &cfg.out_dir);
}
