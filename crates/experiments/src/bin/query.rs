//! Regenerates the `query` exhibit (beyond the paper: live full-sort
//! queries vs the sealed-snapshot query engine). See
//! `experiments::figs::query`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!("running query (scale {}, seed {})\n", cfg.scale, cfg.seed);
    output::emit(&figs::query::run(&cfg), &cfg.out_dir);
    // Extend the repository-level perf trajectory next to the sources.
    let emitted = cfg.out_dir.join("BENCH_query.json");
    match std::fs::copy(&emitted, "BENCH_query.json") {
        Ok(_) => println!("   -> BENCH_query.json"),
        Err(e) => eprintln!("   !! failed to copy {}: {e}", emitted.display()),
    }
}
