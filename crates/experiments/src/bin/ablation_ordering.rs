//! Regenerates the `ablation_ordering` exhibit. See `experiments::figs::ablation_ordering`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running ablation_ordering (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::ablation_ordering::run(&cfg), &cfg.out_dir);
}
