//! Regenerates the `fig04_depth` exhibit. See `experiments::figs::fig04_depth`.
use experiments::{figs, output, RunConfig};

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "running fig04_depth (scale {}, seed {})\n",
        cfg.scale, cfg.seed
    );
    output::emit(&figs::fig04_depth::run(&cfg), &cfg.out_dir);
}
