//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§IV) from the workspace's implementations.
//!
//! Each module under [`figs`] corresponds to one exhibit and exposes a
//! `run(&RunConfig) -> Vec<Table>` function; the binaries under `src/bin`
//! are thin wrappers, and `run_all` executes everything. Output goes to
//! stdout (aligned, human-readable) and to `target/experiments/*.csv`.
//!
//! Scale: set `HF_SCALE` (default `1.0`, full paper scale) to shrink both
//! the traffic and the memory budget proportionally — load factors, and
//! therefore every qualitative result, are preserved. `HF_SCALE=0.1` runs
//! the whole suite in well under a minute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod figs;
pub mod output;
pub mod report;
pub mod setup;

use std::path::PathBuf;

/// Shared run parameters for all experiments.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Multiplier on trace sizes and memory budgets (1.0 = paper scale).
    pub scale: f64,
    /// Directory CSV series are written to.
    pub out_dir: PathBuf,
    /// Base RNG seed; vary to re-run trials with fresh hash functions and
    /// traces.
    pub seed: u64,
    /// Independent trials per data point (distinct seeds, metrics
    /// averaged). The paper plots single runs; trials > 1 averages away
    /// seed noise.
    pub trials: usize,
}

impl RunConfig {
    /// Reads the configuration from the environment (`HF_SCALE`, `HF_SEED`,
    /// `HF_OUT_DIR`), falling back to paper-scale defaults.
    pub fn from_env() -> Self {
        let scale = std::env::var("HF_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0 && s.is_finite())
            .unwrap_or(1.0);
        let seed = std::env::var("HF_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(20_190_707);
        let out_dir = std::env::var("HF_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/experiments"));
        let trials = std::env::var("HF_TRIALS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|t| *t >= 1)
            .unwrap_or(1);
        RunConfig {
            scale,
            out_dir,
            seed,
            trials,
        }
    }

    /// Seed for trial `t` (trial 0 is the base seed).
    pub fn trial_seed(&self, t: usize) -> u64 {
        self.seed.wrapping_add((t as u64).wrapping_mul(0x9e37_79b9))
    }

    /// A configuration for tests: small scale, temp-less (unsaved) output.
    pub fn for_tests(scale: f64) -> Self {
        RunConfig {
            scale,
            out_dir: std::env::temp_dir().join("hashflow-experiments-test"),
            seed: 7,
            trials: 1,
        }
    }

    /// Scales a paper-sized quantity, keeping at least `min`.
    pub fn scaled(&self, paper_value: usize, min: usize) -> usize {
        ((paper_value as f64 * self.scale).round() as usize).max(min)
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: 1.0,
            out_dir: PathBuf::from("target/experiments"),
            seed: 20_190_707,
            trials: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        let cfg = RunConfig::for_tests(0.001);
        assert_eq!(cfg.scaled(250_000, 500), 500);
        assert_eq!(cfg.scaled(1_000_000, 1), 1_000);
    }

    #[test]
    fn default_is_paper_scale() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.scale, 1.0);
        assert_eq!(cfg.scaled(250_000, 1), 250_000);
        assert_eq!(cfg.trials, 1);
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.trial_seed(0), cfg.seed);
        assert_ne!(cfg.trial_seed(1), cfg.trial_seed(2));
    }
}
