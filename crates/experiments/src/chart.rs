//! ASCII line charts for experiment series — lets `run_all` emit a
//! self-contained Markdown report whose figures are readable in a terminal
//! or code review, no plotting stack required.

use std::collections::BTreeMap;

/// A labeled series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (need not be sorted; the chart sorts by x).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Renders labeled series into a fixed-size ASCII grid with axis ranges
/// and a legend. Each series is drawn with its own glyph; overlapping
/// points show the later series' glyph.
///
/// # Examples
///
/// ```
/// use experiments::chart::{render_chart, Series};
///
/// let chart = render_chart(
///     "fsc vs flows",
///     &[Series::new("HashFlow", vec![(1.0, 0.9), (2.0, 0.5)])],
///     40,
///     10,
/// );
/// assert!(chart.contains("HashFlow"));
/// assert!(chart.contains("fsc vs flows"));
/// ```
pub fn render_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let glyphs = ['o', 'x', '+', '*', '#', '@', '%', '&'];

    let all_points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all_points.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all_points {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        let mut pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (x, y) in pts {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - row][col] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{y_max:>9.3}")
        } else if i == height - 1 {
            format!("{y_min:>9.3}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&y_label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push_str(" +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>10} {:<w$.3} {:>8.3}\n",
        "",
        x_min,
        x_max,
        w = width.saturating_sub(8)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", glyphs[si % glyphs.len()], s.label));
    }
    out
}

/// Groups rows `(series key, x, y)` into [`Series`] sorted by key —
/// convenience for the CSV-shaped tables the figures produce.
pub fn series_from_rows(rows: &[(String, f64, f64)]) -> Vec<Series> {
    let mut grouped: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (key, x, y) in rows {
        grouped.entry(key.clone()).or_default().push((*x, *y));
    }
    grouped
        .into_iter()
        .map(|(label, points)| Series::new(label, points))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axes_and_legend() {
        let chart = render_chart(
            "test chart",
            &[
                Series::new("A", vec![(0.0, 0.0), (10.0, 1.0)]),
                Series::new("B", vec![(0.0, 1.0), (10.0, 0.0)]),
            ],
            40,
            8,
        );
        assert!(chart.contains("test chart"));
        assert!(chart.contains("o A"));
        assert!(chart.contains("x B"));
        assert!(chart.contains("1.000"));
        assert!(chart.contains("0.000"));
    }

    #[test]
    fn extreme_corners_are_plotted() {
        let chart = render_chart(
            "c",
            &[Series::new("S", vec![(0.0, 0.0), (1.0, 1.0)])],
            20,
            5,
        );
        let lines: Vec<&str> = chart.lines().collect();
        // Top row (y max) has a glyph at the right edge; bottom data row at
        // the left edge.
        let top = lines[1];
        let bottom = lines[5];
        assert!(top.ends_with('o'), "top row: {top:?}");
        assert!(bottom.contains("|o"), "bottom row: {bottom:?}");
    }

    #[test]
    fn empty_series_is_handled() {
        let chart = render_chart("empty", &[], 20, 5);
        assert!(chart.contains("no data"));
        let chart = render_chart("nan", &[Series::new("S", vec![(f64::NAN, 1.0)])], 20, 5);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = render_chart(
            "flat",
            &[Series::new("S", vec![(1.0, 5.0), (2.0, 5.0)])],
            20,
            5,
        );
        assert!(chart.contains('o'));
    }

    #[test]
    fn grouping_sorts_by_label() {
        let rows = vec![
            ("B".to_owned(), 1.0, 2.0),
            ("A".to_owned(), 1.0, 3.0),
            ("B".to_owned(), 2.0, 4.0),
        ];
        let series = series_from_rows(&rows);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label, "A");
        assert_eq!(series[1].points.len(), 2);
    }
}
