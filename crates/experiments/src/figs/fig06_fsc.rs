//! Fig. 6 — Flow Set Coverage of the four algorithms as the number of
//! concurrent flows grows to 250 K, one panel per trace.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};

/// Runs the FSC comparison sweep.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let sweep = setup::flow_sweep(cfg);
    let results = setup::comparison_sweep(cfg, &sweep, |r| r.fsc);

    let mut table = Table::new(
        "fig06_flow_record_fsc",
        &["trace", "flows", "algorithm", "fsc"],
    );
    for (profile, rows) in results {
        for (flows, algorithm, fsc) in rows {
            table.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(flows),
                Cell::from(algorithm),
                Cell::Float(fsc),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// trace -> algorithm -> (flows, fsc) series
    fn series(table: &Table) -> HashMap<(String, String), Vec<(usize, f64)>> {
        let mut out: HashMap<(String, String), Vec<(usize, f64)>> = HashMap::new();
        for row in table.rows() {
            if let (Cell::Text(t), Cell::Int(f), Cell::Text(a), Cell::Float(v)) =
                (&row[0], &row[1], &row[2], &row[3])
            {
                out.entry((t.clone(), a.clone()))
                    .or_default()
                    .push((*f as usize, *v));
            }
        }
        out
    }

    #[test]
    fn hashflow_wins_at_high_load() {
        // The paper's headline (Fig. 6): at 250K flows HashFlow reports the
        // most correct records. Scaled run keeps the load factors.
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let s = series(&tables[0]);
        for trace in ["CAIDA", "Campus", "ISP1", "ISP2"] {
            let at_max = |alg: &str| {
                s[&(trace.to_owned(), alg.to_owned())]
                    .iter()
                    .max_by_key(|(f, _)| *f)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            let hf = at_max("HashFlow");
            for other in ["HashPipe", "ElasticSketch", "FlowRadar"] {
                assert!(
                    hf >= at_max(other) - 0.02,
                    "{trace}: HashFlow {hf} vs {other} {}",
                    at_max(other)
                );
            }
        }
    }

    #[test]
    fn flowradar_cliff_exists() {
        // FlowRadar decodes perfectly at low load and collapses at high
        // load (Fig. 6's crossing curves).
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let s = series(&tables[0]);
        let fr = &s[&("CAIDA".to_owned(), "FlowRadar".to_owned())];
        let first = fr.iter().min_by_key(|(f, _)| *f).unwrap().1;
        let last = fr.iter().max_by_key(|(f, _)| *f).unwrap().1;
        assert!(
            first > 0.95,
            "light-load decode should be near-perfect, got {first}"
        );
        assert!(last < 0.3, "heavy-load decode should collapse, got {last}");
    }
}
