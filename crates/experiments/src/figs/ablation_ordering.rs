//! Ablation (beyond the paper): sensitivity to packet arrival order.
//!
//! HashFlow's non-evicting collision resolution makes its main table
//! insensitive to the order in which flows' packets interleave; the
//! eviction-based designs are not — HashPipe splits flows more when their
//! packets spread out, and ElasticSketch's vote ratio depends on arrival
//! patterns. This experiment replays the same flow set under four
//! interleavings (§IV uses shuffled, a mixed backbone link).

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_metrics::evaluate;
use hashflow_trace::{InterleaveMode, TraceGenerator, TraceProfile};

const MODES: [InterleaveMode; 4] = [
    InterleaveMode::Shuffled,
    InterleaveMode::Sequential,
    InterleaveMode::RoundRobin,
    InterleaveMode::Bursty,
];

/// Runs the arrival-order ablation on the campus profile.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(60_000, 1_500);
    let budget = setup::standard_budget(cfg);

    let mut table = Table::new(
        "ablation_arrival_order",
        &["interleave", "algorithm", "fsc", "size_are"],
    );
    for mode in MODES {
        let trace = TraceGenerator::new(TraceProfile::Campus, cfg.seed)
            .with_interleave(mode)
            .generate(flows);
        for monitor in setup::comparison_monitors(budget, cfg.seed).iter_mut() {
            let report = evaluate(monitor.as_mut(), &trace, &[]);
            table.push_row(vec![
                Cell::from(mode.to_string()),
                Cell::from(report.algorithm),
                Cell::Float(report.fsc),
                Cell::Float(report.size_are),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashflow_fsc_is_order_insensitive() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let mut spread: HashMap<String, (f64, f64)> = HashMap::new();
        for row in tables[0].rows() {
            if let (Cell::Text(a), Cell::Float(fsc)) = (&row[1], &row[2]) {
                let e = spread.entry(a.clone()).or_insert((f64::MAX, f64::MIN));
                e.0 = e.0.min(*fsc);
                e.1 = e.1.max(*fsc);
            }
        }
        let (lo, hi) = spread["HashFlow"];
        assert!(
            hi - lo < 0.03,
            "HashFlow FSC should barely move with ordering: {lo}..{hi}"
        );
    }

    #[test]
    fn all_modes_produce_rows() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables[0].len(), 4 * 4);
    }
}
