//! Beyond the paper: the §IV equal-memory comparison regenerated over
//! the *enlarged* monitor zoo and the adversarial trace-regime matrix.
//!
//! The paper's §IV ranks four algorithms at the same memory budget on
//! CAIDA-calibrated heavy-tailed selections. This exhibit widens both
//! axes: all nine registered monitors (the paper's five plus Count-Min,
//! FCM, BeauCoup and the exact baseline) × the six-regime trace matrix
//! ([`REGIME_MATRIX`]: two calibrated profiles plus the uniform-flood,
//! single-elephant, churn-heavy and hash-collision-adversarial
//! regimes). One row per `(monitor, regime)` cell: FSC, size-estimation
//! ARE, cardinality RE, heavy-hitter F1 at the regime's threshold, and
//! hash cost per packet.
//!
//! The exact baseline plays ground truth *in band*: it runs under the
//! same memory accounting as everyone else and must report zero size
//! ARE and perfect F1 in every cell — which the embedded tests pin, so
//! the harness itself is checked every CI run. Alongside the CSV table,
//! the run writes `BENCH_equal_memory.json`, extending the repository's
//! machine-readable trajectory.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_collector::{AlgorithmKind, MonitorBuilder};
use hashflow_trace::{TraceRegime, REGIME_MATRIX};
use std::fmt::Write as _;

/// One `(monitor, regime)` cell of the comparison matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Monitor under test.
    pub monitor: &'static str,
    /// Trace regime the cell was measured on.
    pub regime: &'static str,
    /// Heavy-hitter threshold used for the F1 column.
    pub threshold: u32,
    /// Flow Set Coverage (0 by design for the estimate-only sketches).
    pub fsc: f64,
    /// Size-estimation ARE over all true flows.
    pub size_are: f64,
    /// Cardinality relative error.
    pub cardinality_re: f64,
    /// Heavy-hitter F1 at `threshold`.
    pub hh_f1: f64,
    /// Hash computations per packet (cost model, Fig. 11(b)).
    pub hashes_per_pkt: f64,
}

/// Runs the full zoo × regime matrix at the standard budget.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let budget = setup::standard_budget(cfg);
    let flows = cfg.scaled(60_000, 800);

    // One worker per regime (the trace is the expensive shared input);
    // regime order is preserved in the output.
    let mut per_regime: Vec<Option<Vec<MatrixRow>>> = Vec::new();
    for _ in REGIME_MATRIX {
        per_regime.push(None);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, regime) in REGIME_MATRIX.into_iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move || regime_rows(cfg, regime, budget, flows)),
            ));
        }
        for (i, h) in handles {
            per_regime[i] = Some(h.join().expect("exhibit worker panicked"));
        }
    });
    let rows: Vec<MatrixRow> = per_regime
        .into_iter()
        .flat_map(|r| r.expect("all regimes measured"))
        .collect();

    let mut table = Table::new(
        "equal_memory",
        &[
            "monitor",
            "regime",
            "hh_threshold",
            "fsc",
            "size_are",
            "cardinality_re",
            "hh_f1",
            "hashes_per_pkt",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            Cell::from(row.monitor),
            Cell::from(row.regime),
            Cell::Int(i64::from(row.threshold)),
            Cell::Float(row.fsc),
            Cell::Float(row.size_are),
            Cell::Float(row.cardinality_re),
            Cell::Float(row.hh_f1),
            Cell::Float(row.hashes_per_pkt),
        ]);
    }

    let json = bench_json(&rows, budget.bits(), flows);
    let path = cfg.out_dir.join("BENCH_equal_memory.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

/// Measures every registered monitor on one regime's trace.
fn regime_rows(
    cfg: &RunConfig,
    regime: TraceRegime,
    budget: hashflow_monitor::MemoryBudget,
    flows: usize,
) -> Vec<MatrixRow> {
    let trace = regime.generate(cfg.seed, flows);
    let threshold = regime.heavy_hitter_threshold();
    AlgorithmKind::ALL
        .into_iter()
        .map(|kind| {
            let mut monitor = MonitorBuilder::new(kind)
                .budget(budget)
                .seed(cfg.seed)
                .build()
                .unwrap_or_else(|e| panic!("standard budget fits {kind}: {e}"));
            let report = hashflow_metrics::evaluate(monitor.as_mut(), &trace, &[threshold]);
            MatrixRow {
                monitor: report.algorithm,
                regime: regime.name(),
                threshold,
                fsc: report.fsc,
                size_are: report.size_are,
                cardinality_re: report.cardinality_re,
                hh_f1: report.heavy_hitters[0].f1,
                hashes_per_pkt: report.cost.hashes as f64 / report.cost.packets.max(1) as f64,
            }
        })
        .collect()
}

/// Renders the machine-readable summary (hand-rolled flat JSON, like the
/// other `BENCH_*.json` emitters).
fn bench_json(rows: &[MatrixRow], budget_bits: usize, flows: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"equal_memory\",");
    let _ = writeln!(out, "  \"budget_bits\": {budget_bits},");
    let _ = writeln!(out, "  \"flows_per_regime\": {flows},");
    let _ = writeln!(out, "  \"monitors\": {},", AlgorithmKind::ALL.len());
    let _ = writeln!(out, "  \"regimes\": {},", REGIME_MATRIX.len());
    let _ = writeln!(out, "  \"cells\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"monitor\": \"{}\", \"regime\": \"{}\", \"hh_threshold\": {}, \
             \"fsc\": {:.4}, \"size_are\": {:.4}, \"cardinality_re\": {:.4}, \
             \"hh_f1\": {:.4}, \"hashes_per_pkt\": {:.2}}}{comma}",
            r.monitor,
            r.regime,
            r.threshold,
            r.fsc,
            r.size_are,
            r.cardinality_re,
            r.hh_f1,
            r.hashes_per_pkt,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_full_zoo_and_regime_axes() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].len(),
            AlgorithmKind::ALL.len() * REGIME_MATRIX.len()
        );
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_equal_memory.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"equal_memory\""));
        for regime in REGIME_MATRIX {
            assert!(json.contains(regime.name()), "missing {regime}");
        }
        for name in ["HashFlow", "CountMin", "FCM", "BeauCoup", "ExactBaseline"] {
            assert!(json.contains(name), "missing {name}");
        }
    }

    #[test]
    fn exact_baseline_is_in_band_ground_truth_in_every_cell() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        let mut exact_cells = 0;
        for row in tables[0].rows() {
            let monitor = match &row[0] {
                Cell::Text(m) => m.as_str(),
                other => panic!("{other:?}"),
            };
            if monitor != "ExactBaseline" {
                continue;
            }
            exact_cells += 1;
            let (size_are, cardinality_re, f1) = match (&row[4], &row[5], &row[6]) {
                (Cell::Float(a), Cell::Float(c), Cell::Float(f)) => (*a, *c, *f),
                other => panic!("{other:?}"),
            };
            assert_eq!(size_are, 0.0, "exact baseline must have zero ARE");
            assert_eq!(cardinality_re, 0.0, "exact baseline cardinality");
            assert_eq!(f1, 1.0, "exact baseline heavy-hitter F1");
        }
        assert_eq!(exact_cells, REGIME_MATRIX.len());
    }
}
