//! Beyond the paper: the telemetry query subsystem's application library
//! (superspreader, DDoS victim, port scan, heavy changer, flow-size
//! entropy) evaluated over HashFlow and the §IV baselines.
//!
//! Two questions per `(algorithm, application)` pair:
//!
//! * **Accuracy** — every application plan is executed post hoc over the
//!   monitor's sealed epochs and compared against the same plan over the
//!   exact per-epoch flow multiset: precision/recall/F1 of the offender
//!   sets (relative error of the entropy scalar). This is the §IV
//!   methodology lifted from the four fixed reports to arbitrary
//!   declarative queries — what an operator's detection would actually
//!   see through each sketch.
//! * **Overhead** — wall-clock per-packet cost of ingesting the trace
//!   with the whole application suite attached as a streaming
//!   `QueryMonitor`, against the bare monitor (best of [`TRIALS`]).
//!
//! The trace spans two epochs (heavy-changer needs a predecessor), with
//! planted anomalies so every detection has true positives. Alongside
//! the CSV tables, the run writes `BENCH_queryapps.json`, extending the
//! repository's machine-readable trajectory (`BENCH_shard.json`,
//! `BENCH_hotpath.json`, `BENCH_query.json`).

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_collector::{AlgorithmKind, MonitorBuilder};
use hashflow_monitor::{EpochSnapshot, FlowMonitor};
use hashflow_query::{execute, execute_snapshot, AppKind, QueryMonitor, QueryResult, TelemetryApp};
use hashflow_trace::{TraceGenerator, TraceProfile};
use hashflow_types::{FlowKey, FlowRecord, Packet};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock repetitions per ingestion measurement; the fastest is kept.
pub const TRIALS: usize = 3;

/// Detection thresholds of the planted-anomaly workload.
const FANOUT: u64 = 40;
const SOURCES: u64 = 40;
const PORTS: u64 = 30;
const DELTA: u64 = 200;

/// The algorithms under test: every registered monitor that retains flow
/// keys and can therefore answer the records-derived application plans
/// (the estimate-only sketches are excluded by their own capability
/// flag, the same gate `MonitorBuilder::require_records` enforces).
fn algorithms() -> impl Iterator<Item = AlgorithmKind> {
    AlgorithmKind::ALL
        .into_iter()
        .filter(AlgorithmKind::supports_records)
}

/// Accuracy of one `(algorithm, application)` pair.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Monitor under test.
    pub monitor: &'static str,
    /// Application evaluated.
    pub app: AppKind,
    /// True offenders across epochs (exact plan answers).
    pub true_offenders: usize,
    /// Offenders reported from the monitor's sealed records.
    pub reported_offenders: usize,
    /// Precision of the reported offender set (1.0 when both empty).
    pub precision: f64,
    /// Recall of the reported offender set (1.0 when both empty).
    pub recall: f64,
    /// Entropy only: relative error of the scalar, averaged over epochs.
    pub entropy_re: Option<f64>,
}

impl AppRow {
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Ingestion overhead of the streaming query suite for one algorithm.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Monitor under test.
    pub monitor: &'static str,
    /// Bare-monitor ingestion cost (ns/packet, best of [`TRIALS`]).
    pub bare_ns_per_pkt: f64,
    /// Ingestion cost with all five application plans attached.
    pub query_ns_per_pkt: f64,
}

impl OverheadRow {
    /// Per-packet overhead of the attached query suite, in nanoseconds.
    pub fn overhead_ns(&self) -> f64 {
        self.query_ns_per_pkt - self.bare_ns_per_pkt
    }
}

/// Two-epoch workload: profile traffic re-stamped into the first epoch,
/// a drifted variant in the second, anomalies planted in both.
fn build_workload(cfg: &RunConfig, flows: usize) -> (Vec<Packet>, Vec<Vec<FlowRecord>>) {
    const EPOCH_NS: u64 = 1_000_000_000; // 1 s epochs
    let mut packets: Vec<Packet> = Vec::new();
    for epoch in 0..2u64 {
        let trace = TraceGenerator::new(TraceProfile::Caida, cfg.seed + epoch).generate(flows);
        let base = epoch * EPOCH_NS;
        let span = EPOCH_NS / 2; // leave headroom: anomalies follow
        let n = trace.packets().len() as u64;
        packets.extend(
            trace
                .packets()
                .iter()
                .enumerate()
                .map(|(i, p)| Packet::new(p.key(), base + (i as u64 * span) / n.max(1), 64)),
        );
        // The planted detection flows: a superspreader fanning out past
        // FANOUT, a vertical scan past PORTS, and one victim hit by more
        // than SOURCES sources.
        let mut planted: Vec<FlowKey> = Vec::new();
        for d in 0..(FANOUT + 20) as u8 {
            planted.push(FlowKey::new(
                [10, 1, 0, 1].into(),
                [10, 2, 0, d].into(),
                40_000,
                443,
                6,
            ));
        }
        for port in 0..(PORTS + 20) as u16 {
            planted.push(FlowKey::new(
                [10, 3, 0, 3].into(),
                [10, 4, 0, 4].into(),
                5,
                1_000 + port,
                6,
            ));
        }
        for s in 0..(SOURCES + 20) as u8 {
            planted.push(FlowKey::new(
                [10, 6, 1, s].into(),
                [10, 5, 0, 5].into(),
                1_234,
                80,
                6,
            ));
        }
        // Three packets per planted flow, round-robin: multi-packet
        // flows win HashFlow's promotion path even when the tables are
        // already busy, like real scan/flood traffic (which is rarely a
        // single packet per flow).
        let mut at = base + span;
        let mut push = |key: FlowKey, at: &mut u64| {
            packets.push(Packet::new(key, *at, 64));
            *at += 1_000;
        };
        for _round in 0..3 {
            for key in &planted {
                push(*key, &mut at);
            }
        }
        // ... and a flow that bursts only in the second epoch.
        let burst = if epoch == 0 { 10 } else { 10 + 2 * DELTA };
        let elephant = FlowKey::new([10, 7, 0, 7].into(), [10, 8, 0, 8].into(), 5_000, 443, 6);
        for _ in 0..burst {
            push(elephant, &mut at);
        }
    }
    // Exact per-epoch flow multisets (epoch edge at packet timestamps).
    let mut per_epoch: Vec<std::collections::HashMap<FlowKey, u32>> = vec![Default::default(); 2];
    for p in &packets {
        let e = (p.timestamp_ns() / EPOCH_NS).min(1) as usize;
        *per_epoch[e].entry(p.key()).or_insert(0) += 1;
    }
    let truth = per_epoch
        .into_iter()
        .map(|m| m.into_iter().map(|(k, c)| FlowRecord::new(k, c)).collect())
        .collect();
    (packets, truth)
}

/// Precision/recall of a reported offender set against the truth.
fn set_accuracy(reported: &HashSet<FlowKey>, truth: &HashSet<FlowKey>) -> (f64, f64) {
    if reported.is_empty() && truth.is_empty() {
        return (1.0, 1.0);
    }
    let hits = reported.intersection(truth).count() as f64;
    let precision = if reported.is_empty() {
        1.0
    } else {
        hits / reported.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits / truth.len() as f64
    };
    (precision, recall)
}

/// Folds per-epoch plan answers through a fresh instance of `kind`'s
/// application, returning the union of offender keys (and the entropy
/// series).
fn fold_app(kind: AppKind, answers: &[QueryResult]) -> (HashSet<FlowKey>, Vec<f64>) {
    let mut app = match kind {
        AppKind::Superspreader => TelemetryApp::superspreader(FANOUT),
        AppKind::DdosVictim => TelemetryApp::ddos_victim(SOURCES),
        AppKind::PortScan => TelemetryApp::port_scan(PORTS),
        AppKind::HeavyChanger => TelemetryApp::heavy_changer(DELTA),
        AppKind::Entropy => TelemetryApp::entropy(),
    };
    let mut offenders = HashSet::new();
    let mut entropy = Vec::new();
    for answer in answers {
        let verdict = app.observe(answer);
        offenders.extend(verdict.offenders.iter().map(|o| o.key));
        if let Some(h) = verdict.scalar {
            entropy.push(h);
        }
    }
    (offenders, entropy)
}

fn app_plan(kind: AppKind) -> hashflow_query::QueryPlan {
    match kind {
        AppKind::Superspreader => TelemetryApp::superspreader(FANOUT),
        AppKind::DdosVictim => TelemetryApp::ddos_victim(SOURCES),
        AppKind::PortScan => TelemetryApp::port_scan(PORTS),
        AppKind::HeavyChanger => TelemetryApp::heavy_changer(DELTA),
        AppKind::Entropy => TelemetryApp::entropy(),
    }
    .plan()
    .clone()
}

/// Times one full-trace ingestion, ns/packet, best of [`TRIALS`].
fn time_ingest(mut build: impl FnMut() -> Box<dyn FlowMonitor + Send>, packets: &[Packet]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let mut monitor = build();
        let start = Instant::now();
        monitor.process_trace(packets);
        std::hint::black_box(monitor.flow_records().len());
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / packets.len() as f64);
    }
    best
}

/// Runs the application sweep and the overhead measurement.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let budget = setup::standard_budget(cfg);
    // ~60 K flows at the 1 MB standard budget is the paper's load ≈ 1;
    // the smoke floor keeps the scaled-down load below that so HashFlow
    // stays in its accurate regime (the committed full-scale JSON is the
    // claim of record).
    let flows = cfg.scaled(60_000, 900);
    let (packets, truth_epochs) = build_workload(cfg, flows);

    // Exact per-epoch answers for every application plan.
    let exact_answers: Vec<Vec<QueryResult>> = AppKind::ALL
        .iter()
        .map(|kind| {
            let plan = app_plan(*kind);
            truth_epochs.iter().map(|t| execute(&plan, t)).collect()
        })
        .collect();

    let mut app_rows: Vec<AppRow> = Vec::new();
    let mut overhead_rows: Vec<OverheadRow> = Vec::new();
    for algorithm in algorithms() {
        let build = || {
            MonitorBuilder::new(algorithm)
                .budget(budget)
                .seed(cfg.seed)
                .require_records()
                .build()
                .expect("exhibit budget fits")
        };
        // Sealed epochs: split at the 1 s edge like the exact truth.
        let mut monitor = build();
        let mut snapshots: Vec<EpochSnapshot> = Vec::new();
        let edge = packets
            .iter()
            .position(|p| p.timestamp_ns() >= 1_000_000_000)
            .unwrap_or(packets.len());
        monitor.process_trace(&packets[..edge]);
        snapshots.push(monitor.seal());
        monitor.process_trace(&packets[edge..]);
        snapshots.push(monitor.seal());
        let name = monitor.name();

        for (kind, exact) in AppKind::ALL.into_iter().zip(&exact_answers) {
            let plan = app_plan(kind);
            let approx: Vec<QueryResult> = snapshots
                .iter()
                .map(|s| execute_snapshot(&plan, s))
                .collect();
            let (true_off, true_h) = fold_app(kind, exact);
            let (rep_off, rep_h) = fold_app(kind, &approx);
            let (precision, recall) = set_accuracy(&rep_off, &true_off);
            let entropy_re = (kind == AppKind::Entropy).then(|| {
                true_h
                    .iter()
                    .zip(&rep_h)
                    .map(|(t, r)| if *t == 0.0 { 0.0 } else { (r / t - 1.0).abs() })
                    .sum::<f64>()
                    / true_h.len().max(1) as f64
            });
            app_rows.push(AppRow {
                monitor: name,
                app: kind,
                true_offenders: true_off.len(),
                reported_offenders: rep_off.len(),
                precision,
                recall,
                entropy_re,
            });
        }

        // Per-packet overhead of the streaming suite.
        let bare = time_ingest(build, &packets);
        let with_queries = time_ingest(
            || {
                let mut qm = QueryMonitor::new(build());
                for kind in AppKind::ALL {
                    qm.attach(app_plan(kind));
                }
                Box::new(qm)
            },
            &packets,
        );
        overhead_rows.push(OverheadRow {
            monitor: name,
            bare_ns_per_pkt: bare,
            query_ns_per_pkt: with_queries,
        });
    }

    let mut apps_table = Table::new(
        "queryapps",
        &[
            "monitor",
            "app",
            "true_offenders",
            "reported",
            "precision",
            "recall",
            "f1",
            "entropy_re",
        ],
    );
    for row in &app_rows {
        apps_table.push_row(vec![
            Cell::from(row.monitor),
            Cell::from(row.app.name()),
            Cell::Int(row.true_offenders as i64),
            Cell::Int(row.reported_offenders as i64),
            Cell::Float(row.precision),
            Cell::Float(row.recall),
            Cell::Float(row.f1()),
            Cell::Float(row.entropy_re.unwrap_or(f64::NAN)),
        ]);
    }
    let mut overhead_table = Table::new(
        "queryapps_overhead",
        &[
            "monitor",
            "bare_ns_per_pkt",
            "query_ns_per_pkt",
            "overhead_ns",
        ],
    );
    for row in &overhead_rows {
        overhead_table.push_row(vec![
            Cell::from(row.monitor),
            Cell::Float(row.bare_ns_per_pkt),
            Cell::Float(row.query_ns_per_pkt),
            Cell::Float(row.overhead_ns()),
        ]);
    }

    let json = bench_json(&app_rows, &overhead_rows, packets.len());
    let path = cfg.out_dir.join("BENCH_queryapps.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![apps_table, overhead_table]
}

/// Renders the machine-readable summary (hand-rolled flat JSON, like the
/// other `BENCH_*.json` emitters).
fn bench_json(apps: &[AppRow], overhead: &[OverheadRow], packets: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"queryapps\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA+planted-anomalies\",");
    let _ = writeln!(out, "  \"epochs\": 2,");
    let _ = writeln!(out, "  \"packets\": {packets},");
    let _ = writeln!(
        out,
        "  \"thresholds\": {{\"fanout\": {FANOUT}, \"sources\": {SOURCES}, \
         \"ports\": {PORTS}, \"delta\": {DELTA}}},"
    );
    let _ = writeln!(out, "  \"apps\": [");
    for (i, r) in apps.iter().enumerate() {
        let comma = if i + 1 < apps.len() { "," } else { "" };
        let entropy = r
            .entropy_re
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "null".to_owned());
        let _ = writeln!(
            out,
            "    {{\"monitor\": \"{}\", \"app\": \"{}\", \"true_offenders\": {}, \
             \"reported\": {}, \"precision\": {:.4}, \"recall\": {:.4}, \"f1\": {:.4}, \
             \"entropy_re\": {entropy}}}{comma}",
            r.monitor,
            r.app.name(),
            r.true_offenders,
            r.reported_offenders,
            r.precision,
            r.recall,
            r.f1(),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"overhead\": [");
    for (i, r) in overhead.iter().enumerate() {
        let comma = if i + 1 < overhead.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"monitor\": \"{}\", \"bare_ns_per_pkt\": {:.2}, \
             \"query_ns_per_pkt\": {:.2}, \"overhead_ns\": {:.2}}}{comma}",
            r.monitor,
            r.bare_ns_per_pkt,
            r.query_ns_per_pkt,
            r.overhead_ns(),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_rows_and_json() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        // 7 records-capable algorithms x 5 apps; 7 overhead rows.
        let zoo = algorithms().count();
        assert_eq!(zoo, 7);
        assert_eq!(tables[0].len(), zoo * AppKind::ALL.len());
        assert_eq!(tables[1].len(), zoo);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_queryapps.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"queryapps\""));
        for name in [
            "HashFlow",
            "HashPipe",
            "ElasticSketch",
            "FlowRadar",
            "SampledNetFlow",
            "BeauCoup",
            "ExactBaseline",
        ] {
            assert!(json.contains(name), "missing {name}");
        }
        for app in AppKind::ALL {
            assert!(json.contains(app.name()), "missing {app}");
        }
    }

    #[test]
    fn planted_anomalies_are_true_offenders_and_hashflow_finds_them() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        for row in tables[0].rows() {
            let (monitor, app) = match (&row[0], &row[1]) {
                (Cell::Text(m), Cell::Text(a)) => (m.as_str(), a.as_str()),
                other => panic!("{other:?}"),
            };
            let true_offenders = match row[2] {
                Cell::Int(n) => n,
                ref other => panic!("{other:?}"),
            };
            if app != "entropy" {
                assert!(true_offenders >= 1, "{monitor}/{app}: no true offenders");
            }
            // HashFlow at the standard budget recalls the planted
            // anomalies (its record report is near-exact at this load).
            if monitor == "HashFlow" {
                let recall = match row[5] {
                    Cell::Float(v) => v,
                    ref other => panic!("{other:?}"),
                };
                assert!(recall > 0.5, "{monitor}/{app}: recall {recall}");
            }
        }
    }
}
