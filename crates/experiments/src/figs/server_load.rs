//! Beyond the paper: the collector daemon under concurrent query load.
//!
//! The server PR turns the pipeline into a long-running daemon
//! ([`hashflow_server::Server`]): ingest front-ends feed one bounded
//! queue, a wall-clock timer seals epochs, and a fixed HTTP worker pool
//! serves sealed history from immutable `Arc`-swapped views. The design
//! claim worth measuring is *reader isolation*: the ingest path never
//! takes a lock a reader holds, so piling HTTP clients onto the query
//! API must not stall packet processing.
//!
//! For each reader count (0, 1, 2, 4, 8) this exhibit boots a fresh
//! daemon, replays the same CAIDA-profile trace token-bucket paced at
//! [`PACE_PPS`] (a sustained rate well inside single-thread capacity,
//! so any drop would be reader-induced), and hammers the query API
//! from that many concurrent reader threads (rotating `GET /epochs`,
//! `/epochs/{n}/top`, `/queries`, `/healthz`). Per row it reports
//! sustained ingest rate (kpps), query latency percentiles
//! (p50/p99/max µs), the health check, and the drop-ledger
//! conservation identity `offered == processed + dropped` — which must
//! hold exactly whatever the reader load, because every shed batch is
//! ledgered at the offer side. Reader isolation shows up as the
//! `dropped` column staying 0 from 0 readers through 8.
//!
//! The `server_load` binary re-derives the conservation and health
//! gates from the emitted table and exits non-zero on violation; the
//! committed `BENCH_server.json` carries the full-scale numbers.

use crate::output::{Cell, Table};
use crate::RunConfig;
use hashflow_obs::Histogram;
use hashflow_server::{client, ReplayPace, Server, ServerConfig};
use hashflow_trace::{TraceGenerator, TraceProfile};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent HTTP reader counts, one daemon boot per entry. The
/// acceptance tier is the 8-reader row.
pub const READER_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

/// Wall-clock epoch length the daemon seals at. Short enough that every
/// run seals several epochs, long enough that sealing cost stays a small
/// fraction of the run.
pub const EPOCH_MS: u64 = 100;

/// Replay pacing in packets/s. Far below single-thread collector
/// capacity (several Mpps batched), so the daemon sustains it with
/// zero shed batches unless readers stall ingest — which is exactly
/// the failure this exhibit exists to catch. The bounded ingest queue
/// ([`INGEST_BATCHES`] × 256 records) additionally cushions ~500 ms of
/// this rate against scheduler gaps on small (even single-core) CI
/// machines.
pub const PACE_PPS: u64 = 250_000;

/// Ingest queue bound in batches for the exhibit's daemon.
pub const INGEST_BATCHES: usize = 512;

/// One reader-count measurement.
#[derive(Debug, Clone)]
pub struct ServerLoadRow {
    /// Concurrent HTTP reader threads.
    pub readers: usize,
    /// Flows in the replayed trace.
    pub flows: usize,
    /// Packets in the replayed trace.
    pub packets: u64,
    /// Records offered at the ingest port.
    pub offered: u64,
    /// Records the collector processed.
    pub processed: u64,
    /// Records shed by backpressure (ledgered).
    pub dropped: u64,
    /// Epochs sealed over the run.
    pub epochs: u64,
    /// Sustained ingest rate over the replay window (kilopackets/s).
    pub kpps: f64,
    /// HTTP requests completed by the readers.
    pub requests: u64,
    /// Median query latency in microseconds (0 without readers).
    pub p50_us: f64,
    /// 99th-percentile query latency in microseconds.
    pub p99_us: f64,
    /// Worst query latency in microseconds.
    pub max_us: f64,
    /// Whether `GET /healthz` reported healthy at end of run.
    pub healthz_ok: bool,
    /// Whether the drop ledger conserved.
    pub conserved: bool,
}

/// Think time between one reader's requests. Dashboard clients poll;
/// they don't busy-loop. Without this the readers degenerate into a
/// CPU-theft benchmark on small machines (a single-core runner spends
/// ~90% of its cycles in 8 spinning readers), which measures the OS
/// scheduler, not the daemon's reader isolation.
pub const READER_THINK: Duration = Duration::from_millis(1);

/// One reader thread's share of the query load: rotate the read-side
/// endpoints until told to stop, recording every request's latency (µs)
/// into the shared log2 [`Histogram`] — the same structure the daemon
/// itself uses for its per-route latency metrics, so the exhibit's
/// percentiles come from [`Histogram::value_at_quantile`] instead of a
/// private sort-and-index implementation.
fn run_reader(addr: SocketAddr, stop: Arc<AtomicBool>, latency: Histogram) {
    let paths = ["/epochs", "/healthz", "/queries"];
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        // Interleave a top-k against whatever epoch is currently the
        // oldest retained one — the realistic "dashboard" request.
        let dynamic;
        let path = if i % 4 == 3 {
            match client::get(addr, "/epochs") {
                Ok((_, body)) => match extract_first_epoch(&body) {
                    Some(n) => {
                        dynamic = format!("/epochs/{n}/top?k=10");
                        dynamic.as_str()
                    }
                    None => "/epochs",
                },
                Err(_) => "/epochs",
            }
        } else {
            paths[i % paths.len()]
        };
        let start = Instant::now();
        if client::get(addr, path).is_ok() {
            latency.observe(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
        i += 1;
        std::thread::sleep(READER_THINK);
    }
}

/// Pulls the first `"epoch":N` out of an `/epochs` response without a
/// JSON parser (the field is emitted first in every epoch object).
fn extract_first_epoch(body: &str) -> Option<u64> {
    let at = body.find("\"epoch\":")? + "\"epoch\":".len();
    let digits: String = body[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Boots a daemon, replays `packets` paced at [`PACE_PPS`] under
/// `readers` concurrent HTTP readers, and measures one row.
fn measure(readers: usize, flows: usize, packets: &[hashflow_types::Packet]) -> ServerLoadRow {
    let mut server = Server::start(ServerConfig {
        epoch_ms: EPOCH_MS,
        retention: 32,
        http_workers: 8,
        ingest_capacity: INGEST_BATCHES,
        queries: vec!["map dst | reduce count | threshold 1".to_string()],
        ..ServerConfig::default()
    })
    .expect("server boots on ephemeral loopback port");
    let addr = server.http_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let latency = Histogram::new();
    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let latency = latency.clone();
            std::thread::spawn(move || run_reader(addr, stop, latency))
        })
        .collect();

    let total = packets.len() as u64;
    server.start_replay(packets.to_vec(), ReplayPace::Pps(PACE_PPS));
    // The replay is done when every packet has been offered; give the
    // sealer one more epoch so the tail lands in a sealed snapshot.
    let port = server.ingest_port();
    let deadline = Instant::now() + Duration::from_secs(60);
    while port.drop_stats().offered_records() < total && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(EPOCH_MS + 20));

    let healthz_ok = matches!(client::get(addr, "/healthz"), Ok((200, _)));
    stop.store(true, Ordering::Relaxed);
    for h in reader_handles {
        h.join().expect("reader thread panicked");
    }
    let quantile_us = |q: f64| latency.value_at_quantile(q).unwrap_or(0) as f64;

    let report = server.shutdown();
    let elapsed = report
        .replays
        .first()
        .map(|r| r.elapsed.as_secs_f64())
        .unwrap_or(0.0);
    ServerLoadRow {
        readers,
        flows,
        packets: total,
        offered: report.offered_records,
        processed: report.packets_processed,
        dropped: report.dropped_records,
        epochs: report.epochs_sealed,
        kpps: if elapsed > 0.0 {
            report.packets_processed as f64 / elapsed / 1e3
        } else {
            0.0
        },
        requests: latency.count(),
        p50_us: quantile_us(0.50),
        p99_us: quantile_us(0.99),
        max_us: quantile_us(1.0),
        healthz_ok,
        conserved: report.conserved(),
    }
}

/// Runs the exhibit: one daemon boot + replay per reader count.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(60_000, 1_000);
    let trace = TraceGenerator::new(TraceProfile::Caida, cfg.seed).generate(flows);
    println!(
        "server_load: CAIDA, {flows} flows, {} packets, epoch {EPOCH_MS} ms",
        trace.packets().len()
    );

    let rows: Vec<ServerLoadRow> = READER_COUNTS
        .iter()
        .map(|&readers| {
            let row = measure(readers, flows, trace.packets());
            println!(
                "  readers {:>2}: {:>9.1} kpps, {:>6} requests, p99 {:>8.1} us, \
                 conserved {}, healthz {}",
                row.readers, row.kpps, row.requests, row.p99_us, row.conserved, row.healthz_ok
            );
            row
        })
        .collect();

    for row in &rows {
        assert!(
            row.conserved,
            "readers {}: offered {} != processed {} + dropped {}",
            row.readers, row.offered, row.processed, row.dropped
        );
        assert!(row.healthz_ok, "readers {}: /healthz not 200", row.readers);
        assert!(
            row.readers == 0 || row.requests > 0,
            "readers {} completed no requests",
            row.readers
        );
    }

    let mut table = Table::new(
        "server_load",
        &[
            "readers",
            "flows",
            "packets",
            "offered",
            "processed",
            "dropped",
            "epochs",
            "kpps",
            "requests",
            "p50_us",
            "p99_us",
            "max_us",
            "healthz_ok",
            "conserved",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            Cell::Int(r.readers as i64),
            Cell::Int(r.flows as i64),
            Cell::Int(r.packets as i64),
            Cell::Int(r.offered as i64),
            Cell::Int(r.processed as i64),
            Cell::Int(r.dropped as i64),
            Cell::Int(r.epochs as i64),
            Cell::Float(r.kpps),
            Cell::Int(r.requests as i64),
            Cell::Float(r.p50_us),
            Cell::Float(r.p99_us),
            Cell::Float(r.max_us),
            Cell::Int(i64::from(r.healthz_ok)),
            Cell::Int(i64::from(r.conserved)),
        ]);
    }

    let json = bench_json(&rows);
    let path = cfg.out_dir.join("BENCH_server.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

fn bench_json(rows: &[ServerLoadRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"server_load\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA\",");
    let _ = writeln!(out, "  \"epoch_ms\": {EPOCH_MS},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"readers\": {}, \"flows\": {}, \"packets\": {}, \"offered\": {}, \
             \"processed\": {}, \"dropped\": {}, \"epochs\": {}, \"kpps\": {:.3}, \
             \"requests\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \
             \"healthz_ok\": {}, \"conserved\": {}}}{comma}",
            r.readers,
            r.flows,
            r.packets,
            r.offered,
            r.processed,
            r.dropped,
            r.epochs,
            r.kpps,
            r.requests,
            r.p50_us,
            r.p99_us,
            r.max_us,
            r.healthz_ok,
            r.conserved,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_rows_conserve_and_stay_healthy() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables[0].rows().len(), READER_COUNTS.len());
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_server.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"server_load\""));
        assert!(!json.contains("\"conserved\": false"));
        assert!(!json.contains("\"healthz_ok\": false"));
    }

    #[test]
    fn first_epoch_extraction() {
        assert_eq!(
            extract_first_epoch("{\"epochs\":[{\"epoch\":17,\"flows\":3}]}"),
            Some(17)
        );
        assert_eq!(extract_first_epoch("{\"epochs\":[]}"), None);
    }
}
