//! Fig. 4 — flow-size-estimation ARE of HashFlow under main-table depths
//! 1..4 (50 K flows per trace, standard memory budget).

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_core::{HashFlow, HashFlowConfig, TableScheme};
use hashflow_metrics::evaluate;

/// Runs the depth ablation.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(50_000, 1_000);
    let budget = setup::standard_budget(cfg);
    let base = HashFlowConfig::with_memory(budget).expect("standard budget fits");

    let results = setup::per_profile(|profile| {
        let trace = setup::trace_for(cfg, profile, flows);
        (1..=4usize)
            .map(|depth| {
                let config = HashFlowConfig::builder()
                    .main_cells(base.main_cells())
                    .ancillary_cells(base.ancillary_cells())
                    .scheme(TableScheme::Pipelined {
                        depth,
                        alpha: hashflow_core::DEFAULT_ALPHA,
                    })
                    .seed(cfg.seed)
                    .build()
                    .expect("valid depth config");
                let mut hf = HashFlow::new(config).expect("constructible");
                let report = evaluate(&mut hf, &trace, &[]);
                (depth, report.size_are)
            })
            .collect::<Vec<_>>()
    });

    let mut table = Table::new("fig04_depth_are", &["trace", "depth", "are"]);
    for (profile, rows) in results {
        for (depth, are) in rows {
            table.push_row(vec![
                Cell::from(profile.name()),
                Cell::Int(depth as i64),
                Cell::Float(are),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deeper_tables_reduce_are() {
        // The paper: increasing d from 1 to 3 reduces the ARE by around 3x.
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let mut by_trace: HashMap<String, HashMap<i64, f64>> = HashMap::new();
        for row in tables[0].rows() {
            if let (Cell::Text(t), Cell::Int(d), Cell::Float(a)) = (&row[0], &row[1], &row[2]) {
                by_trace.entry(t.clone()).or_default().insert(*d, *a);
            }
        }
        for (trace, depths) in by_trace {
            assert!(
                depths[&3] <= depths[&1] + 0.02,
                "{trace}: depth 3 ARE {} should improve on depth 1 {}",
                depths[&3],
                depths[&1]
            );
        }
    }

    #[test]
    fn four_traces_four_depths() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables[0].len(), 16);
    }
}
