//! Fig. 10 — size-estimation ARE of the detected heavy hitters (shares its
//! experiment with Fig. 9; see [`crate::figs::fig09_hh_f1::run_both`]).

use crate::output::Table;
use crate::RunConfig;

/// Runs the heavy-hitter ARE table.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let (_, are) = super::fig09_hh_f1::run_both(cfg);
    vec![are]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::Cell;
    use std::collections::HashMap;

    #[test]
    fn hashflow_heavy_hitter_sizes_are_accurate() {
        // Paper: "when HashFlow makes nearly perfect size estimation of the
        // heavy hitters, the ARE of HashPipe and ElasticSketch are around
        // 0.15-0.2 and 0.2-0.25".
        let cfg = RunConfig::for_tests(0.04);
        let tables = run(&cfg);
        let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
        for row in tables[0].rows() {
            if let (Cell::Text(t), Cell::Text(a), Cell::Float(v)) = (&row[0], &row[2], &row[3]) {
                if t != "ISP2" {
                    let e = sums.entry(a.clone()).or_insert((0.0, 0));
                    e.0 += v;
                    e.1 += 1;
                }
            }
        }
        let avg: HashMap<String, f64> = sums
            .into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect();
        assert!(avg["HashFlow"] < 0.2, "HashFlow HH ARE {}", avg["HashFlow"]);
        assert!(
            avg["HashFlow"] < avg["ElasticSketch"],
            "HashFlow {} vs ElasticSketch {}",
            avg["HashFlow"],
            avg["ElasticSketch"]
        );
    }
}
