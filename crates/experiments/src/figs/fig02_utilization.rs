//! Fig. 2 — utilization of the multi-hash table and the pipelined tables:
//! the §III-B model against simulation.
//!
//! * Panel (a): multi-hash, n = 100 K buckets, d = 1..10, m/n ∈ {1..4}.
//! * Panels (b)/(c): pipelined, m/n ∈ {1, 2}, α ∈ {0.5, 0.6, 0.7, 0.8}.
//! * Panel (d): model-predicted improvement of pipelined over multi-hash at
//!   d = 3 as a function of α, for several loads.

use crate::output::{Cell, Table};
use crate::RunConfig;
use hashflow_core::{model, scheme::MainTable, TableScheme};
use hashflow_types::FlowKey;

const DEPTHS: std::ops::RangeInclusive<usize> = 1..=10;
const ALPHAS: [f64; 4] = [0.5, 0.6, 0.7, 0.8];

/// Inserts `m` distinct flows once each and reports the realized
/// utilization.
fn simulate(scheme: TableScheme, m: usize, n: usize, seed: u64) -> f64 {
    let mut table = MainTable::new(scheme, n, seed).expect("valid scheme");
    for i in 0..m {
        let key = FlowKey::from_index((seed << 32) ^ i as u64);
        table.probe(&key);
    }
    table.utilization()
}

/// Runs all four panels.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let n = cfg.scaled(100_000, 2_000);

    let mut panel_a = Table::new(
        "fig02a_multihash_utilization",
        &["load_m_over_n", "depth", "theory", "simulation"],
    );
    for load in [1.0f64, 2.0, 3.0, 4.0] {
        let m = (load * n as f64) as usize;
        for d in DEPTHS {
            let theory = model::multi_hash_utilization(load, d);
            let sim = simulate(
                TableScheme::MultiHash { depth: d },
                m,
                n,
                cfg.seed + d as u64,
            );
            panel_a.push_row(vec![
                Cell::Float(load),
                Cell::Int(d as i64),
                Cell::Float(theory),
                Cell::Float(sim),
            ]);
        }
    }

    let mut panel_bc = Table::new(
        "fig02bc_pipelined_utilization",
        &["load_m_over_n", "alpha", "depth", "theory", "simulation"],
    );
    for load in [1.0f64, 2.0] {
        let m = (load * n as f64) as usize;
        for alpha in ALPHAS {
            for d in DEPTHS {
                let theory = model::pipelined_utilization(load, d, alpha);
                let sim = simulate(
                    TableScheme::Pipelined { depth: d, alpha },
                    m,
                    n,
                    cfg.seed + d as u64,
                );
                panel_bc.push_row(vec![
                    Cell::Float(load),
                    Cell::Float(alpha),
                    Cell::Int(d as i64),
                    Cell::Float(theory),
                    Cell::Float(sim),
                ]);
            }
        }
    }

    let mut panel_d = Table::new(
        "fig02d_pipelined_improvement",
        &["alpha", "load_m_over_n", "improvement"],
    );
    for alpha_pct in (50..=100).step_by(5) {
        let alpha = alpha_pct as f64 / 100.0;
        for load in [1.0f64, 1.2, 1.4, 1.6, 1.8, 2.0, 3.0, 4.0] {
            panel_d.push_row(vec![
                Cell::Float(alpha),
                Cell::Float(load),
                Cell::Float(model::pipelined_improvement(load, 3, alpha)),
            ]);
        }
    }

    vec![panel_a, panel_bc, panel_d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_simulation_at_moderate_load() {
        // The paper: "when m/n >= 2, the multi-hash table model provides
        // nearly perfect predictions".
        let cfg = RunConfig::for_tests(0.2); // n = 20K buckets
        let tables = run(&cfg);
        let panel_a = &tables[0];
        for row in panel_a.rows() {
            let (load, theory, sim) = match (&row[0], &row[2], &row[3]) {
                (Cell::Float(l), Cell::Float(t), Cell::Float(s)) => (*l, *t, *s),
                other => panic!("unexpected row {other:?}"),
            };
            if load >= 2.0 {
                assert!(
                    (theory - sim).abs() < 0.02,
                    "load {load}: theory {theory} vs sim {sim}"
                );
            } else {
                assert!(
                    (theory - sim).abs() < 0.06,
                    "load {load}: theory {theory} vs sim {sim}"
                );
            }
        }
    }

    #[test]
    fn pipelined_sim_matches_model() {
        // "This time the model and the simulation results match quite well."
        let cfg = RunConfig::for_tests(0.2);
        let tables = run(&cfg);
        let bc = &tables[1];
        for row in bc.rows() {
            let (theory, sim) = match (&row[3], &row[4]) {
                (Cell::Float(t), Cell::Float(s)) => (*t, *s),
                other => panic!("unexpected row {other:?}"),
            };
            assert!((theory - sim).abs() < 0.05, "theory {theory} vs sim {sim}");
        }
    }

    #[test]
    fn tables_have_expected_shapes() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 4 * 10);
        assert_eq!(tables[1].len(), 2 * 4 * 10);
        assert_eq!(tables[2].len(), 11 * 8);
    }
}
