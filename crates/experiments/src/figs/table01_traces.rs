//! Table I + Fig. 3 — per-trace statistics and the flow-size CDF of the
//! four (synthetic) evaluation traces, plus the §II skew quote check for
//! the campus trace.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_trace::TraceProfile;

/// Regenerates Table I and the Fig. 3 CDF series.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(250_000, 2_000);

    let results = setup::per_profile(|profile| {
        let trace = setup::trace_for(cfg, profile, flows);
        let stats = trace.stats();
        let cdf = stats.default_cdf().points().to_vec();
        let campus_skew = stats.packet_share_of_top_flows(0.077);
        (stats, cdf, campus_skew)
    });

    let mut table1 = Table::new(
        "table01_trace_statistics",
        &[
            "trace",
            "date",
            "flows",
            "packets",
            "max_flow_size",
            "avg_flow_size",
            "paper_max",
            "paper_avg",
        ],
    );
    let mut fig3 = Table::new("fig03_flow_size_cdf", &["trace", "size", "cdf"]);
    let mut skew = Table::new(
        "sec2_campus_skew",
        &["trace", "top_flow_fraction", "packet_share"],
    );

    for (profile, (stats, cdf, top_share)) in &results {
        table1.push_row(vec![
            Cell::from(profile.name()),
            Cell::from(profile.date()),
            Cell::from(stats.flows),
            Cell::from(stats.packets),
            Cell::from(stats.max_flow_size),
            Cell::Float(stats.avg_flow_size),
            Cell::from(profile.max_flow_size()),
            Cell::Float(profile.avg_flow_size()),
        ]);
        for (size, fraction) in cdf {
            fig3.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(*size),
                Cell::Float(*fraction),
            ]);
        }
        skew.push_row(vec![
            Cell::from(profile.name()),
            Cell::Float(0.077),
            Cell::Float(*top_share),
        ]);
    }

    let _ = TraceProfile::Campus; // referenced in docs
    vec![table1, fig3, skew]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_land_near_table1() {
        let cfg = RunConfig::for_tests(0.1); // 25K flows
        let tables = run(&cfg);
        let t1 = &tables[0];
        assert_eq!(t1.len(), 4);
        for row in t1.rows() {
            let (avg, paper_avg) = match (&row[5], &row[7]) {
                (Cell::Float(a), Cell::Float(p)) => (*a, *p),
                other => panic!("unexpected {other:?}"),
            };
            assert!(
                (avg - paper_avg).abs() / paper_avg < 0.35,
                "avg {avg} too far from paper {paper_avg}"
            );
        }
    }

    #[test]
    fn campus_is_most_skewed() {
        let cfg = RunConfig::for_tests(0.1);
        let tables = run(&cfg);
        let skew = &tables[2];
        let shares: Vec<f64> = skew
            .rows()
            .iter()
            .map(|r| match &r[2] {
                Cell::Float(v) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Campus (§II): top 7.7 % of flows carry well over half the packets
        // and more than any other profile.
        let campus = shares[1];
        assert!(campus > 0.6, "campus skew {campus}");
        assert!(shares.iter().all(|&s| s <= campus + 1e-9));
    }

    #[test]
    fn cdf_series_cover_all_traces() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        let fig3 = &tables[1];
        let names: std::collections::HashSet<String> = fig3
            .rows()
            .iter()
            .map(|r| match &r[0] {
                Cell::Text(s) => s.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(names.len(), 4);
    }
}
