//! Fig. 8 — Average Relative Error of per-flow size estimation, one panel
//! per trace, for 20 K to 100 K concurrent flows.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};

/// Runs the size-estimation comparison sweep.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let sweep = setup::size_estimation_sweep(cfg);
    let results = setup::comparison_sweep(cfg, &sweep, |r| r.size_are);

    let mut table = Table::new(
        "fig08_size_estimation_are",
        &["trace", "flows", "algorithm", "are"],
    );
    for (profile, rows) in results {
        for (flows, algorithm, are) in rows {
            table.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(flows),
                Cell::from(algorithm),
                Cell::Float(are),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn at_flow_count(table: &Table, trace: &str, flows: usize) -> HashMap<String, f64> {
        let mut out = HashMap::new();
        for row in table.rows() {
            if let (Cell::Text(t), Cell::Int(f), Cell::Text(a), Cell::Float(v)) =
                (&row[0], &row[1], &row[2], &row[3])
            {
                if t == trace && *f as usize == flows {
                    out.insert(a.clone(), *v);
                }
            }
        }
        out
    }

    #[test]
    fn hashflow_lowest_are_at_midrange() {
        // Paper: "for estimating the sizes of 50K flows, HashFlow achieves
        // a relative error of around 11.6%, while the estimation error of
        // the best competitor is 42.9% higher". At 10% scale the 50K point
        // is 5K flows (index 2 of the sweep, but scaled); just compare at
        // the mid sweep point.
        let cfg = RunConfig::for_tests(0.1);
        let sweep = setup::size_estimation_sweep(&cfg);
        let mid = sweep[2];
        let tables = run(&cfg);
        for trace in ["CAIDA", "Campus", "ISP1"] {
            let are = at_flow_count(&tables[0], trace, mid);
            let hf = are["HashFlow"];
            for other in ["HashPipe", "ElasticSketch"] {
                assert!(
                    hf <= are[other] + 0.03,
                    "{trace}: HashFlow {hf} vs {other} {}",
                    are[other]
                );
            }
        }
    }

    #[test]
    fn are_grows_with_load_for_hashflow() {
        let cfg = RunConfig::for_tests(0.1);
        let tables = run(&cfg);
        let mut series: Vec<(usize, f64)> = Vec::new();
        for row in tables[0].rows() {
            if let (Cell::Text(t), Cell::Int(f), Cell::Text(a), Cell::Float(v)) =
                (&row[0], &row[1], &row[2], &row[3])
            {
                if t == "CAIDA" && a == "HashFlow" {
                    series.push((*f as usize, *v));
                }
            }
        }
        series.sort_by_key(|(f, _)| *f);
        assert!(
            series.first().unwrap().1 <= series.last().unwrap().1 + 0.02,
            "ARE should grow with load: {series:?}"
        );
    }
}
