//! Fig. 5 — multi-hash vs pipelined main tables on the campus trace:
//! FSC (panel a) and size-estimation ARE (panel b) as the number of
//! concurrent flows grows from 10 K to 60 K, for α ∈ {0.6, 0.7, 0.8}.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_core::{HashFlow, HashFlowConfig, TableScheme};
use hashflow_metrics::evaluate;
use hashflow_trace::TraceProfile;

const DEPTH: usize = 3;

fn variants() -> Vec<(&'static str, TableScheme)> {
    vec![
        ("Multi-hash", TableScheme::MultiHash { depth: DEPTH }),
        (
            "alpha=0.6",
            TableScheme::Pipelined {
                depth: DEPTH,
                alpha: 0.6,
            },
        ),
        (
            "alpha=0.7",
            TableScheme::Pipelined {
                depth: DEPTH,
                alpha: 0.7,
            },
        ),
        (
            "alpha=0.8",
            TableScheme::Pipelined {
                depth: DEPTH,
                alpha: 0.8,
            },
        ),
    ]
}

/// Runs the scheme/weight comparison on the campus profile.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let budget = setup::standard_budget(cfg);
    let base = HashFlowConfig::with_memory(budget).expect("standard budget fits");
    let sweep: Vec<usize> = (1..=6).map(|i| cfg.scaled(10_000 * i, 200 * i)).collect();

    let mut fsc_table = Table::new("fig05a_scheme_fsc", &["scheme", "flows", "fsc"]);
    let mut are_table = Table::new("fig05b_scheme_are", &["scheme", "flows", "are"]);

    for &flows in &sweep {
        let trace = setup::trace_for(cfg, TraceProfile::Campus, flows);
        for (label, scheme) in variants() {
            let config = HashFlowConfig::builder()
                .main_cells(base.main_cells())
                .ancillary_cells(base.ancillary_cells())
                .scheme(scheme)
                .seed(cfg.seed)
                .build()
                .expect("valid scheme config");
            let mut hf = HashFlow::new(config).expect("constructible");
            let report = evaluate(&mut hf, &trace, &[]);
            fsc_table.push_row(vec![
                Cell::from(label),
                Cell::from(flows),
                Cell::Float(report.fsc),
            ]);
            are_table.push_row(vec![
                Cell::from(label),
                Cell::from(flows),
                Cell::Float(report.size_are),
            ]);
        }
    }

    vec![fsc_table, are_table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn metric_by_scheme(table: &Table) -> HashMap<String, Vec<f64>> {
        let mut out: HashMap<String, Vec<f64>> = HashMap::new();
        for row in table.rows() {
            if let (Cell::Text(s), Cell::Float(v)) = (&row[0], &row[2]) {
                out.entry(s.clone()).or_default().push(*v);
            }
        }
        out
    }

    #[test]
    fn fsc_decreases_with_flow_count() {
        let cfg = RunConfig::for_tests(0.1);
        let tables = run(&cfg);
        let by_scheme = metric_by_scheme(&tables[0]);
        for (scheme, series) in by_scheme {
            assert!(
                series.first().unwrap() >= series.last().unwrap(),
                "{scheme}: FSC should not grow with load: {series:?}"
            );
        }
    }

    #[test]
    fn pipelined_07_beats_multihash_on_average() {
        let cfg = RunConfig::for_tests(0.1);
        let tables = run(&cfg);
        let by_scheme = metric_by_scheme(&tables[0]);
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let multi = avg(&by_scheme["Multi-hash"]);
        let piped = avg(&by_scheme["alpha=0.7"]);
        assert!(
            piped >= multi - 0.01,
            "pipelined {piped} should be at least multi-hash {multi}"
        );
    }

    #[test]
    fn table_shapes() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 6 * 4);
        assert_eq!(tables[1].len(), 6 * 4);
    }
}
