//! Beyond the paper: scalar vs batched single-core ingestion.
//!
//! The paper's efficiency claim (Fig. 11) is about *algorithmic* cost —
//! 1–4 hashes and at most 6 memory accesses per packet. This exhibit
//! measures what the **batched hot path** buys on top of that, at equal
//! algorithmic cost: `process_batch` precomputes every hash lane a batch
//! needs in one pass, issues software prefetches ahead of the update
//! cursor, and flushes operation counts once per batch instead of per
//! packet. Recorded `CostSnapshot`s are identical on both paths by
//! contract (the exhibit asserts it), so the speedup is pure schedule:
//! warm cache lines and amortized bookkeeping.
//!
//! Two workload tiers on the CAIDA profile:
//!
//! * `paper` — the §IV-A setup: 1 MB budget, 100 K flows. The main table
//!   mostly fits in L2, so batching pays mainly through one-pass hashing
//!   and amortized cost accounting.
//! * `production` — 8x the budget and flows (the ROADMAP's
//!   production-scale direction). The main table is several times larger
//!   than L2, every probe is a cache miss on the scalar path, and the
//!   prefetch window does the heavy lifting.
//!
//! Alongside the CSV table, the run writes `BENCH_hotpath.json` into the
//! output directory (the `hotpath` binary also copies it to the working
//! directory), extending the repository's machine-readable performance
//! trajectory started by `BENCH_shard.json`.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_core::{HashFlow, HashFlowConfig, TableScheme};
use hashflow_monitor::{FlowMonitor, MemoryBudget};
use hashflow_trace::TraceProfile;
use simswitch::SoftwareSwitch;
use std::fmt::Write as _;

/// Wall-clock repetitions per path; the fastest is kept (the standard
/// noise-robust estimator for short serial timings).
pub const TRIALS: usize = 3;

/// One scalar-vs-batched measurement.
#[derive(Debug, Clone)]
pub struct HotpathRow {
    /// Workload tier (`paper` or `production`).
    pub workload: &'static str,
    /// Monitor under test.
    pub monitor: &'static str,
    /// Main-table scheme label (empty for non-HashFlow monitors).
    pub scheme: String,
    /// Memory budget in bytes.
    pub budget_bytes: usize,
    /// Distinct flows in the trace.
    pub flows: usize,
    /// Packets replayed.
    pub packets: u64,
    /// Scalar per-packet ingest rate (Kpps, best of [`TRIALS`]).
    pub scalar_kpps: f64,
    /// Batched ingest rate (Kpps, best of [`TRIALS`]).
    pub batched_kpps: f64,
}

impl HotpathRow {
    /// Batched over scalar throughput.
    pub fn speedup(&self) -> f64 {
        self.batched_kpps / self.scalar_kpps
    }
}

fn hashflow_with(budget: MemoryBudget, scheme: TableScheme) -> HashFlow {
    let config = HashFlowConfig::with_memory(budget)
        .expect("exhibit budget fits HashFlow")
        .rebuild()
        .scheme(scheme)
        .build()
        .expect("scheme variant fits the same budget");
    HashFlow::new(config).expect("valid config")
}

fn measure(
    workload: &'static str,
    monitor: &mut (impl FlowMonitor + ?Sized),
    scheme: String,
    budget: MemoryBudget,
    flows: usize,
    trace: &hashflow_trace::Trace,
) -> HotpathRow {
    let switch = SoftwareSwitch::default();
    let mut scalar_kpps = 0.0f64;
    let mut batched_kpps = 0.0f64;
    let mut costs = None;
    for _ in 0..TRIALS {
        let s = switch.replay_scalar(monitor, trace);
        let b = switch.replay(monitor, trace);
        // The process_batch contract, enforced at measurement time:
        // batching may change the schedule, never the recorded costs.
        assert_eq!(
            s.cost,
            b.cost,
            "{}: batched cost diverged from scalar",
            monitor.name()
        );
        costs = Some(s.cost);
        scalar_kpps = scalar_kpps.max(s.native_pps / 1e3);
        batched_kpps = batched_kpps.max(b.native_pps / 1e3);
    }
    HotpathRow {
        workload,
        monitor: monitor.name(),
        scheme,
        budget_bytes: budget.bytes(),
        flows,
        packets: costs.expect("at least one trial").packets,
        scalar_kpps,
        batched_kpps,
    }
}

/// Runs the scalar-vs-batched sweep on the CAIDA profile.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let paper_budget = setup::standard_budget(cfg);
    let production_budget =
        MemoryBudget::from_bytes(paper_budget.bytes() * 8).expect("8x standard budget is positive");
    let paper_flows = cfg.scaled(100_000, 2_000);
    let production_flows = cfg.scaled(800_000, 4_000);

    let mut rows: Vec<HotpathRow> = Vec::new();
    for (workload, budget, flows) in [
        ("paper", paper_budget, paper_flows),
        ("production", production_budget, production_flows),
    ] {
        let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);
        for scheme in [
            TableScheme::Pipelined {
                depth: 3,
                alpha: 0.7,
            },
            TableScheme::MultiHash { depth: 3 },
        ] {
            let mut hf = hashflow_with(budget, scheme);
            rows.push(measure(
                workload,
                &mut hf,
                scheme.to_string(),
                budget,
                flows,
                &trace,
            ));
        }
        let mut fr =
            flowradar::FlowRadar::with_memory(budget).expect("exhibit budget fits FlowRadar");
        rows.push(measure(
            workload,
            &mut fr,
            String::new(),
            budget,
            flows,
            &trace,
        ));
    }

    let mut table = Table::new(
        "hotpath",
        &[
            "trace",
            "workload",
            "monitor",
            "scheme",
            "scalar_kpps",
            "batched_kpps",
            "speedup",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            Cell::from("CAIDA"),
            Cell::from(row.workload),
            Cell::from(row.monitor),
            Cell::from(row.scheme.clone()),
            Cell::Float(row.scalar_kpps),
            Cell::Float(row.batched_kpps),
            Cell::Float(row.speedup()),
        ]);
    }

    let json = bench_json(&rows);
    let path = cfg.out_dir.join("BENCH_hotpath.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

/// Renders the machine-readable summary (hand-rolled flat JSON, like the
/// other `BENCH_*.json` emitters).
fn bench_json(rows: &[HotpathRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"hotpath\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA\",");
    let _ = writeln!(out, "  \"trials\": {TRIALS},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"monitor\": \"{}\", \"scheme\": \"{}\", \
             \"budget_bytes\": {}, \"flows\": {}, \"packets\": {}, \
             \"scalar_kpps\": {:.3}, \"batched_kpps\": {:.3}, \"speedup\": {:.3}}}{comma}",
            r.workload,
            r.monitor,
            r.scheme,
            r.budget_bytes,
            r.flows,
            r.packets,
            r.scalar_kpps,
            r.batched_kpps,
            r.speedup(),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_rows_and_json() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        // 2 workloads x (2 HashFlow schemes + FlowRadar).
        assert_eq!(tables[0].len(), 6);
        for row in tables[0].rows() {
            if let Cell::Float(speedup) = &row[6] {
                assert!(*speedup > 0.0, "speedup must be positive");
            } else {
                panic!("speedup column must be a float");
            }
        }
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_hotpath.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"hotpath\""));
        assert!(json.contains("\"workload\": \"production\""));
        assert!(json.contains("batched_kpps"));
    }

    #[test]
    fn batched_path_is_no_slower_at_scale() {
        // The committed BENCH_hotpath.json carries the full-scale
        // release-mode claim (>= 1.5x on the production tier); in debug
        // or scaled-down smoke runs only a sanity floor is enforced.
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let hashflow_speedups: Vec<f64> = tables[0]
            .rows()
            .iter()
            .filter(|row| matches!(&row[2], Cell::Text(t) if t == "HashFlow"))
            .filter_map(|row| match &row[6] {
                Cell::Float(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(hashflow_speedups.len(), 4);
        for s in hashflow_speedups {
            if cfg!(debug_assertions) {
                // Unoptimized builds invert the comparison (the batched
                // path's abstractions cost more than they save without
                // inlining) and a contended runner adds noise on top;
                // only require a sane measurement there. The speedup
                // claim is about the release artifact.
                assert!(s > 0.0, "batched HashFlow ingest unmeasured: {s}");
            } else {
                assert!(s > 0.8, "batched HashFlow ingest regressed: {s}");
            }
        }
    }
}
