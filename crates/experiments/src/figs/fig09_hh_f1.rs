//! Fig. 9 — heavy-hitter detection F1 score at 250 K flows, per-trace
//! threshold sweeps (the x-axes of the paper's four panels).

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_metrics::evaluate;

/// Runs the heavy-hitter F1 comparison; also emits the size-ARE table of
/// Fig. 10 from the same runs (the two figures share the experiment).
pub fn run_both(cfg: &RunConfig) -> (Table, Table) {
    let flows = cfg.scaled(250_000, 2_000);
    let budget = setup::standard_budget(cfg);

    let results = setup::per_profile(|profile| {
        let trace = setup::trace_for(cfg, profile, flows);
        let thresholds = scaled_thresholds(cfg, &profile.heavy_hitter_thresholds());
        let mut rows = Vec::new();
        for monitor in setup::comparison_monitors(budget, cfg.seed).iter_mut() {
            let report = evaluate(monitor.as_mut(), &trace, &thresholds);
            for hh in report.heavy_hitters {
                rows.push((report.algorithm, hh));
            }
        }
        rows
    });

    let mut f1_table = Table::new(
        "fig09_heavy_hitter_f1",
        &[
            "trace",
            "threshold",
            "algorithm",
            "precision",
            "recall",
            "f1",
            "true_hh",
        ],
    );
    let mut are_table = Table::new(
        "fig10_heavy_hitter_are",
        &["trace", "threshold", "algorithm", "are"],
    );
    for (profile, rows) in results {
        for (algorithm, hh) in rows {
            f1_table.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(hh.threshold),
                Cell::from(algorithm),
                Cell::Float(hh.precision),
                Cell::Float(hh.recall),
                Cell::Float(hh.f1),
                Cell::from(hh.actual),
            ]);
            are_table.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(hh.threshold),
                Cell::from(algorithm),
                Cell::Float(hh.size_are),
            ]);
        }
    }
    (f1_table, are_table)
}

/// Scales the paper's threshold axes along with the traffic so the number
/// of true heavy hitters stays comparable. Flow sizes do not scale with
/// `HF_SCALE` (the size distribution is fixed), but the *memory pressure*
/// does, so thresholds are kept as-is at full scale and lowered gently at
/// small scale to keep a non-trivial heavy-hitter set.
fn scaled_thresholds(cfg: &RunConfig, paper: &[u32]) -> Vec<u32> {
    if cfg.scale >= 0.99 {
        return paper.to_vec();
    }
    // Shrink thresholds by sqrt(scale), floor 1, dedup.
    let factor = cfg.scale.sqrt();
    let mut out: Vec<u32> = paper
        .iter()
        .map(|&t| ((f64::from(t) * factor).round() as u32).max(1))
        .collect();
    out.dedup();
    out
}

/// Runs Fig. 9 only (the binary for Fig. 10 calls [`run_both`] too).
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let (f1, _) = run_both(cfg);
    vec![f1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashflow_beats_competitors_on_f1() {
        let cfg = RunConfig::for_tests(0.04);
        let (f1, _) = run_both(&cfg);
        // Average F1 per algorithm over all traces/thresholds with a
        // non-empty true heavy-hitter set.
        let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
        for row in f1.rows() {
            if let (Cell::Text(a), Cell::Float(v), Cell::Int(actual)) = (&row[2], &row[5], &row[6])
            {
                if *actual > 0 {
                    let e = sums.entry(a.clone()).or_insert((0.0, 0));
                    e.0 += v;
                    e.1 += 1;
                }
            }
        }
        let avg: HashMap<String, f64> = sums
            .into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect();
        assert!(
            avg["HashFlow"] + 0.02 >= avg["HashPipe"],
            "HashFlow {} vs HashPipe {}",
            avg["HashFlow"],
            avg["HashPipe"]
        );
        assert!(
            avg["HashFlow"] > avg["ElasticSketch"],
            "HashFlow {} vs ElasticSketch {}",
            avg["HashFlow"],
            avg["ElasticSketch"]
        );
        assert!(
            avg["HashFlow"] > avg["FlowRadar"],
            "HashFlow {} vs FlowRadar {}",
            avg["HashFlow"],
            avg["FlowRadar"]
        );
    }

    #[test]
    fn f1_improves_with_threshold_for_hashflow() {
        // Larger thresholds mean fewer, larger heavy hitters, which
        // HashFlow detects nearly perfectly (Fig. 9 curves rise toward 1).
        let cfg = RunConfig::for_tests(0.04);
        let (f1, _) = run_both(&cfg);
        let mut caida: Vec<(u32, f64)> = Vec::new();
        for row in f1.rows() {
            if let (Cell::Text(t), Cell::Int(th), Cell::Text(a), Cell::Float(v)) =
                (&row[0], &row[1], &row[2], &row[5])
            {
                if t == "CAIDA" && a == "HashFlow" {
                    caida.push((*th as u32, *v));
                }
            }
        }
        caida.sort_by_key(|(t, _)| *t);
        let first = caida.first().unwrap().1;
        let last = caida.last().unwrap().1;
        assert!(last >= first - 0.05, "F1 series {caida:?}");
        assert!(last > 0.8, "HashFlow F1 at largest threshold: {last}");
    }
}
