//! Ablation (beyond the paper): HashFlow vs the traditional Sampled
//! NetFlow the introduction motivates against (§I).
//!
//! At the same memory budget, sampled NetFlow with 1-in-N sampling misses
//! most mice entirely and carries `±N` quantization noise on every count;
//! HashFlow keeps exact records for everything its main table can hold.
//! This experiment puts numbers on the claim for N ∈ {1, 10, 100} against
//! the CAIDA profile.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_core::HashFlow;
use hashflow_metrics::evaluate;
use hashflow_monitor::FlowMonitor;
use hashflow_trace::TraceProfile;
use sampled_netflow::SampledNetFlow;

/// Runs the sampling comparison.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(100_000, 2_000);
    let budget = setup::standard_budget(cfg);
    let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);

    let mut monitors: Vec<(String, Box<dyn FlowMonitor>)> = vec![(
        "HashFlow".to_owned(),
        Box::new(HashFlow::with_memory(budget).expect("fits")),
    )];
    for n in [1u32, 10, 100] {
        monitors.push((
            format!("NetFlow 1:{n}"),
            Box::new(SampledNetFlow::with_memory(budget, n).expect("fits")),
        ));
    }

    let mut table = Table::new(
        "ablation_sampled_netflow",
        &["algorithm", "fsc", "size_are", "hh_f1", "hashes_per_pkt"],
    );
    for (label, monitor) in monitors.iter_mut() {
        let report = evaluate(monitor.as_mut(), &trace, &[100]);
        table.push_row(vec![
            Cell::from(label.clone()),
            Cell::Float(report.fsc),
            Cell::Float(report.size_are),
            Cell::Float(report.heavy_hitters[0].f1),
            Cell::Float(report.cost.avg_hashes_per_packet()),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn metrics(cfg: &RunConfig) -> HashMap<String, (f64, f64)> {
        let tables = run(cfg);
        let mut out = HashMap::new();
        for row in tables[0].rows() {
            if let (Cell::Text(a), Cell::Float(fsc), Cell::Float(are)) = (&row[0], &row[1], &row[2])
            {
                out.insert(a.clone(), (*fsc, *are));
            }
        }
        out
    }

    #[test]
    fn hashflow_beats_sampled_netflow() {
        let cfg = RunConfig::for_tests(0.05);
        let m = metrics(&cfg);
        let (hf_fsc, hf_are) = m["HashFlow"];
        let (nf_fsc, nf_are) = m["NetFlow 1:100"];
        assert!(
            hf_fsc > nf_fsc,
            "fsc: HashFlow {hf_fsc} vs NetFlow {nf_fsc}"
        );
        assert!(
            hf_are < nf_are,
            "are: HashFlow {hf_are} vs NetFlow {nf_are}"
        );
    }

    #[test]
    fn heavier_sampling_loses_more_flows() {
        let cfg = RunConfig::for_tests(0.05);
        let m = metrics(&cfg);
        assert!(
            m["NetFlow 1:1"].0 >= m["NetFlow 1:10"].0,
            "1:1 {} vs 1:10 {}",
            m["NetFlow 1:1"].0,
            m["NetFlow 1:10"].0
        );
        assert!(
            m["NetFlow 1:10"].0 >= m["NetFlow 1:100"].0,
            "1:10 {} vs 1:100 {}",
            m["NetFlow 1:10"].0,
            m["NetFlow 1:100"].0
        );
    }
}
