//! Beyond the paper: multi-core shard scaling of HashFlow ingestion.
//!
//! The paper's throughput exhibit (Fig. 11) runs every algorithm on one
//! bmv2 core; this exhibit measures what the `hashflow-shard` scale-out
//! layer adds on top. A `ShardedMonitor<HashFlow>` at N = 1/2/4/8 shards
//! replays the CAIDA-profile trace under **one shared memory budget**
//! (split equally, summing to at most the single-monitor budget) and
//! reports, per shard count:
//!
//! * `native_kpps` — the threaded ingest wall clock on this machine
//!   (approaches the critical path when the machine has >= N cores);
//! * `modeled_parallel_kpps` — the critical-path model
//!   `packets / (dispatch + slowest lane)` from contention-free serial
//!   lane timings, i.e. the throughput with one core per shard;
//! * `speedup_modeled` — modeled throughput relative to N = 1;
//! * `imbalance` — busiest shard's packet share over the ideal share;
//! * `dispatch_share` — fraction of serial time spent in RSS dispatch
//!   (the Amdahl term that bounds the attainable speedup).
//!
//! Alongside the CSV table, the run writes `BENCH_shard.json` into the
//! output directory (the `scaling_shards` binary also copies it to the
//! working directory), seeding the repository's performance trajectory
//! with machine-readable numbers.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_core::HashFlow;
use hashflow_shard::ShardedMonitor;
use hashflow_trace::TraceProfile;
use simswitch::{ShardedReplayReport, SoftwareSwitch};
use std::fmt::Write as _;

/// Shard counts of the scaling sweep.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the shard-scaling sweep on the CAIDA profile.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(100_000, 2_000);
    let budget = setup::standard_budget(cfg);
    let switch = SoftwareSwitch::default();
    let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);

    let reports: Vec<(usize, ShardedReplayReport)> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let mut monitor =
                ShardedMonitor::with_budget(shards, budget, |_, b| HashFlow::with_memory(b))
                    .expect("standard budget splits across the sweep's shard counts");
            (shards, switch.replay_sharded(&mut monitor, &trace))
        })
        .collect();

    let base_parallel_pps = reports
        .first()
        .map(|(_, r)| r.modeled_parallel_pps)
        .unwrap_or(f64::NAN);

    let mut table = Table::new(
        "scaling_shards",
        &[
            "trace",
            "shards",
            "native_kpps",
            "modeled_parallel_kpps",
            "speedup_modeled",
            "imbalance",
            "dispatch_share",
        ],
    );
    for (shards, report) in &reports {
        table.push_row(vec![
            Cell::from("CAIDA"),
            Cell::from(*shards),
            Cell::Float(report.native_pps / 1e3),
            Cell::Float(report.modeled_parallel_pps / 1e3),
            Cell::Float(report.modeled_parallel_pps / base_parallel_pps),
            Cell::Float(report.imbalance),
            Cell::Float(report.dispatch_elapsed_ns as f64 / report.serial_elapsed_ns as f64),
        ]);
    }

    let json = bench_json(flows, budget.bytes(), &reports, base_parallel_pps);
    let path = cfg.out_dir.join("BENCH_shard.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

/// Renders the machine-readable scaling summary (no serde: the format is
/// flat and hand-rolled like the NetFlow encoder elsewhere in the tree).
fn bench_json(
    flows: usize,
    budget_bytes: usize,
    reports: &[(usize, ShardedReplayReport)],
    base_parallel_pps: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"shard_scaling\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA\",");
    let _ = writeln!(out, "  \"flows\": {flows},");
    let _ = writeln!(out, "  \"budget_bytes\": {budget_bytes},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, (shards, r)) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"shards\": {shards}, \"packets\": {}, \"native_kpps\": {:.3}, \
             \"modeled_parallel_kpps\": {:.3}, \"speedup_modeled\": {:.3}, \
             \"imbalance\": {:.3}, \"dispatch_share\": {:.4}}}{comma}",
            r.packets,
            r.native_pps / 1e3,
            r.modeled_parallel_pps / 1e3,
            r.modeled_parallel_pps / base_parallel_pps,
            r.imbalance,
            r.dispatch_elapsed_ns as f64 / r.serial_elapsed_ns as f64,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(table: &Table, shards: i64, col: usize) -> f64 {
        for row in table.rows() {
            if let (Cell::Int(s), Cell::Float(v)) = (&row[1], &row[col]) {
                if *s == shards {
                    return *v;
                }
            }
        }
        panic!("no row for {shards} shards");
    }

    #[test]
    fn sweep_covers_all_shard_counts() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        assert_eq!(tables[0].len(), SHARD_COUNTS.len());
        for &n in &SHARD_COUNTS {
            assert!(column(&tables[0], n as i64, 2) > 0.0);
        }
        // N = 1 is the speedup baseline by construction.
        assert!((column(&tables[0], 1, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn four_shards_model_at_least_doubles_throughput() {
        // The acceptance bar: one core per shard buys >= 2x at N = 4 on
        // the CAIDA profile. The modeled number comes from serial
        // contention-free lane timings, so it holds on a 1-core CI runner
        // too; the committed BENCH_shard.json carries the full-scale
        // release-mode run. Unoptimized (debug) builds pay a much larger
        // relative dispatch cost, so the bar is looser there — the 2x
        // claim is about the release artifact the benches measure.
        let cfg = RunConfig::for_tests(0.2);
        let tables = run(&cfg);
        let speedup = column(&tables[0], 4, 4);
        if cfg!(debug_assertions) {
            // Debug timings on a contended runner are too noisy for a
            // meaningful bar; only require a sane, positive measurement.
            assert!(speedup > 0.5, "modeled speedup at N=4 is {speedup}");
        } else {
            assert!(
                speedup >= 2.0,
                "modeled speedup at N=4 is {speedup}, expected >= 2"
            );
        }
    }

    #[test]
    fn dispatch_share_is_the_minor_term() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        // Loose bar in debug builds: contended-runner noise and the lack
        // of inlining both inflate the dispatch share there.
        let bar = if cfg!(debug_assertions) { 0.9 } else { 0.5 };
        for &n in &[2usize, 4, 8] {
            let share = column(&tables[0], n as i64, 6);
            assert!(
                share < bar,
                "dispatch must stay cheaper than measurement, got {share} at N={n}"
            );
        }
    }

    #[test]
    fn bench_json_is_emitted_with_rows() {
        let cfg = RunConfig::for_tests(0.05);
        let _ = run(&cfg);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_shard.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"shard_scaling\""));
        assert!(json.contains("\"shards\": 8"));
        assert!(json.contains("native_kpps"));
    }
}
