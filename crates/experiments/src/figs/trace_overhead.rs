//! Beyond the paper: what the flight recorder and sampled flow-path
//! tracing cost on the hot path.
//!
//! The observability PR threads a [`FlightRecorder`] (bounded structured
//! event ring) and a [`FlowTracer`] (deterministic 1-in-N flow sampling
//! recording placement/dispatch/seal spans) through every pipeline
//! stage. The design claim is that diagnostics a collector can leave on
//! in production must be nearly free at the default sampling rate: the
//! unsampled-packet cost is one key hash and a branch, and the sampled
//! 1-in-[`SAMPLING`] minority pays a ring append. This exhibit measures
//! that claim directly: the same monitor, the same CAIDA trace, the same
//! production-tier budget, replayed bare and then with a recorder plus
//! tracer attached.
//!
//! Three ingest paths, mirroring the `obs_overhead` exhibit (the two
//! overhead gates compose — a deployment runs both layers):
//!
//! * `scalar` — one packet at a time through the full collector
//!   pipeline; spans come from the HashFlow placement stages.
//! * `batched` — the batched hot path.
//! * `sharded4` — a 4-shard [`ShardedMonitor`] on the threaded ingest
//!   path, where the dispatcher adds a per-packet sampling check and
//!   shed/panic events ride the recorder.
//!
//! Every instrumented run also proves the tracer was actually live: the
//! recorder must hold events when the replay ends (a "free" tracer that
//! recorded nothing would be measuring a no-op).
//!
//! The run writes `BENCH_trace.json` (the `trace_overhead` binary copies
//! it to the working directory and fails below [`SMOKE_FLOOR`]); the
//! committed copy carries the release-mode claim that every path keeps
//! at least 95% of its bare throughput at the production tier with
//! 1-in-1024 sampling.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_collector::{AlgorithmKind, Collector};
use hashflow_core::HashFlow;
use hashflow_monitor::{FlowMonitor, FlowTracer, MemoryBudget, DEFAULT_TRACE_SAMPLING};
use hashflow_obs::FlightRecorder;
use hashflow_shard::ShardedMonitor;
use hashflow_trace::{Trace, TraceProfile};
use simswitch::SoftwareSwitch;
use std::fmt::Write as _;

/// Wall-clock repetitions per path; the fastest is kept. Bare and traced
/// replays interleave within one trial loop so transient machine noise
/// lands on both sides of the ratio instead of biasing whichever side
/// ran later.
pub const TRIALS: usize = 7;

/// Shard count on the threaded path.
pub const SHARDS: usize = 4;

/// Flow-sampling rate under test: the production default (1-in-1024).
pub const SAMPLING: u64 = DEFAULT_TRACE_SAMPLING;

/// Floor on `traced / bare` enforced by the `trace_overhead` binary (and
/// the CI smoke run): above 10% overhead the process exits non-zero.
/// Deliberately looser than the <= 5% claim because scaled-down smoke
/// traces finish in microseconds, where timer noise dwarfs the real
/// cost; the claim itself is carried by the committed full-scale
/// `BENCH_trace.json`.
pub const SMOKE_FLOOR: f64 = 0.90;

/// One bare-vs-traced measurement on a single ingest path.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Ingest path (`scalar`, `batched`, or `sharded4`).
    pub path: &'static str,
    /// Memory budget in bytes.
    pub budget_bytes: usize,
    /// Distinct flows in the trace.
    pub flows: usize,
    /// Packets replayed per trial.
    pub packets: u64,
    /// Throughput with no recorder/tracer (Kpps, best of [`TRIALS`]).
    pub bare_kpps: f64,
    /// Throughput with recorder + 1-in-[`SAMPLING`] tracer attached
    /// (Kpps, best of [`TRIALS`]).
    pub traced_kpps: f64,
    /// Events the recorder held when the traced replays finished
    /// (proves the instrumentation was live).
    pub events: u64,
}

impl TraceRow {
    /// Traced over bare throughput; 1.0 = free, 0.95 = 5% tax.
    pub fn overhead_ratio(&self) -> f64 {
        self.traced_kpps / self.bare_kpps
    }
}

fn collector(budget: MemoryBudget, recorder: Option<&FlightRecorder>) -> Collector {
    let mut builder = Collector::builder(AlgorithmKind::HashFlow).budget(budget);
    if let Some(recorder) = recorder {
        builder = builder
            .with_recorder(recorder.clone())
            .with_tracer(FlowTracer::new(recorder.clone(), SAMPLING));
    }
    builder.build().expect("exhibit budget fits HashFlow")
}

fn measure_pipeline(
    path: &'static str,
    batched: bool,
    budget: MemoryBudget,
    flows: usize,
    trace: &Trace,
) -> TraceRow {
    let switch = SoftwareSwitch::default();
    let mut bare = collector(budget, None);
    let recorder = FlightRecorder::new();
    let mut traced = collector(budget, Some(&recorder));

    let mut bare_kpps = 0.0f64;
    let mut traced_kpps = 0.0f64;
    let mut packets = 0u64;
    for _ in 0..TRIALS {
        let (b, t) = if batched {
            (
                switch.replay(&mut bare, trace),
                switch.replay(&mut traced, trace),
            )
        } else {
            (
                switch.replay_scalar(&mut bare, trace),
                switch.replay_scalar(&mut traced, trace),
            )
        };
        bare_kpps = bare_kpps.max(b.native_pps / 1e3);
        traced_kpps = traced_kpps.max(t.native_pps / 1e3);
        packets = b.packets;
    }

    // The instrumentation must have been live: sampled flows leave spans
    // (and every seal leaves an epoch_sealed event) in the ring.
    let events = recorder.last_seq();
    assert!(events > 0, "{path}: traced run recorded no events");

    TraceRow {
        path,
        budget_bytes: budget.bytes(),
        flows,
        packets,
        bare_kpps,
        traced_kpps,
        events,
    }
}

fn sharded(budget: MemoryBudget) -> ShardedMonitor<HashFlow> {
    ShardedMonitor::with_budget(SHARDS, budget, |_, b| HashFlow::with_memory(b))
        .expect("exhibit budget splits across shards")
}

/// One threaded-ingest pass; Kpps from the report's own wall clock.
fn ingest_kpps(monitor: &mut ShardedMonitor<HashFlow>, trace: &Trace) -> f64 {
    monitor.reset();
    let report = monitor.ingest(trace.packets());
    if report.elapsed_ns == 0 {
        f64::INFINITY
    } else {
        trace.packets().len() as f64 * 1e6 / report.elapsed_ns as f64
    }
}

fn measure_sharded(budget: MemoryBudget, flows: usize, trace: &Trace) -> TraceRow {
    let mut bare = sharded(budget);
    let recorder = FlightRecorder::new();
    let mut traced = sharded(budget);
    traced.set_recorder(recorder.clone());
    traced.set_tracer(FlowTracer::new(recorder.clone(), SAMPLING));

    let mut bare_kpps = 0.0f64;
    let mut traced_kpps = 0.0f64;
    for _ in 0..TRIALS {
        bare_kpps = bare_kpps.max(ingest_kpps(&mut bare, trace));
        traced_kpps = traced_kpps.max(ingest_kpps(&mut traced, trace));
    }

    // The dispatcher spans sampled flows; a trace with >= SAMPLING flows
    // statistically always trips at least one (the CAIDA profile at any
    // exhibit scale samples hundreds). Tolerate zero only when the trace
    // is too small to expect a hit.
    let events = recorder.last_seq();
    assert!(
        events > 0 || (flows as u64) < SAMPLING,
        "sharded4: traced run recorded no events over {flows} flows"
    );

    TraceRow {
        path: "sharded4",
        budget_bytes: budget.bytes(),
        flows,
        packets: trace.packets().len() as u64,
        bare_kpps,
        traced_kpps,
        events,
    }
}

/// Runs the bare-vs-traced sweep on the CAIDA production tier.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let paper_budget = setup::standard_budget(cfg);
    let budget =
        MemoryBudget::from_bytes(paper_budget.bytes() * 8).expect("8x standard budget is positive");
    let flows = cfg.scaled(800_000, 4_000);
    let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);

    let rows = vec![
        measure_pipeline("scalar", false, budget, flows, &trace),
        measure_pipeline("batched", true, budget, flows, &trace),
        measure_sharded(budget, flows, &trace),
    ];

    let mut table = Table::new(
        "trace_overhead",
        &[
            "trace",
            "path",
            "budget_bytes",
            "flows",
            "packets",
            "bare_kpps",
            "traced_kpps",
            "overhead_ratio",
            "events",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            Cell::from("CAIDA"),
            Cell::from(row.path),
            Cell::Int(row.budget_bytes as i64),
            Cell::Int(row.flows as i64),
            Cell::Int(row.packets as i64),
            Cell::Float(row.bare_kpps),
            Cell::Float(row.traced_kpps),
            Cell::Float(row.overhead_ratio()),
            Cell::Int(row.events as i64),
        ]);
    }

    let json = bench_json(&rows);
    let path = cfg.out_dir.join("BENCH_trace.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

/// Renders the machine-readable summary (hand-rolled flat JSON, like the
/// other `BENCH_*.json` emitters).
fn bench_json(rows: &[TraceRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"trace_overhead\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA\",");
    let _ = writeln!(out, "  \"workload\": \"production\",");
    let _ = writeln!(out, "  \"sampling_one_in\": {SAMPLING},");
    let _ = writeln!(out, "  \"trials\": {TRIALS},");
    let _ = writeln!(out, "  \"smoke_floor\": {SMOKE_FLOOR},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"path\": \"{}\", \"budget_bytes\": {}, \"flows\": {}, \"packets\": {}, \
             \"bare_kpps\": {:.3}, \"traced_kpps\": {:.3}, \"overhead_ratio\": {:.4}, \
             \"events\": {}}}{comma}",
            r.path,
            r.budget_bytes,
            r.flows,
            r.packets,
            r.bare_kpps,
            r.traced_kpps,
            r.overhead_ratio(),
            r.events,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_three_paths_and_emits_json() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables[0].len(), 3);
        for row in tables[0].rows() {
            if let Cell::Float(ratio) = &row[7] {
                // The measurement (and its live-instrumentation asserts)
                // must hold at any scale; the throughput claim itself
                // belongs to the committed release-mode BENCH_trace.json.
                assert!(*ratio > 0.0, "overhead ratio must be positive");
            } else {
                panic!("overhead_ratio column must be a float");
            }
        }
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_trace.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"trace_overhead\""));
        assert!(json.contains("\"sampling_one_in\": 1024"));
        assert!(json.contains("\"path\": \"scalar\""));
        assert!(json.contains("\"path\": \"batched\""));
        assert!(json.contains("\"path\": \"sharded4\""));
        assert!(json.contains("overhead_ratio"));
    }
}
