//! Beyond the paper: the pipeline under overload and export faults.
//!
//! The robustness PR gives every bounded buffer a uniform
//! [`BackpressurePolicy`] contract, a conserved drop ledger
//! (`offered == delivered + dropped`, by construction), retry + health
//! states on the export path and panic isolation in the shard workers.
//! This exhibit turns those mechanisms on under deterministic injected
//! faults and measures what the paper's continuous-operation story needs
//! measured:
//!
//! * `stalled_sink` — every export stalls for [`STALL`] (a slow
//!   downstream collector). Ingest throughput is timed *around* the
//!   stalls: the packet path must not pay for a slow export path, and
//!   not one record may go missing.
//! * `shard_queue` (one row per policy) — a deliberately slow consumer
//!   behind the bounded shard queues. `Block` must deliver everything at
//!   the consumer's pace; `DropNewest` / `DropOldest` must shed at the
//!   dispatcher's pace with every shed packet on the ledger.
//! * `sink_outage` / `retry` — a hard outage window narrower than the
//!   [`RetrySink`] attempt budget: retries absorb the outage entirely,
//!   zero records lost, zero errors surfaced.
//! * `sink_outage` / `quarantine` — an outage wider than the retry
//!   budget would hide, driven into the [`HealthPolicy`] state machine:
//!   the sink degrades, quarantines, is probed and recovers; every
//!   record is either delivered, failed or skipped-while-quarantined,
//!   and the three buckets sum back to what was offered.
//!
//! Every row satisfies the conservation identity
//! `offered == delivered + dropped`; the `overload` binary re-checks it
//! and exits non-zero on violation — the CI smoke gate. The committed
//! `BENCH_overload.json` carries the full-scale CAIDA production-tier
//! numbers.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_collector::{AlgorithmKind, Collector};
use hashflow_core::HashFlow;
use hashflow_monitor::{
    BackpressurePolicy, CostSnapshot, EpochSnapshot, FaultInjectingSink, FaultPlan, FlowMonitor,
    HealthPolicy, MemoryBudget, MergeableMonitor, RecordSink, RetryPolicy, RetrySink, SinkHealth,
};
use hashflow_shard::ShardedMonitor;
use hashflow_trace::{Trace, TraceProfile};
use hashflow_types::{FlowKey, FlowRecord, Packet};
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epochs sealed in the export-path scenarios (`stalled_sink`,
/// `sink_outage`): enough seals for quarantine, probing and recovery to
/// all happen inside the run.
pub const EPOCHS: usize = 16;

/// Injected latency of every export in the `stalled_sink` scenario —
/// the "100 ms slow collector" tier from the acceptance criteria.
pub const STALL: Duration = Duration::from_millis(100);

/// Injected per-batch latency of the slow consumer in the `shard_queue`
/// scenario. One lane batch is [`hashflow_shard::BATCH_PACKETS`]
/// packets, so this makes the workers lag the dispatcher by orders of
/// magnitude — a sustained overload, not a blip.
pub const SLOW_BATCH: Duration = Duration::from_millis(1);

/// Shard count in the `shard_queue` scenario.
pub const SHARDS: usize = 4;

/// One scenario x policy measurement.
#[derive(Debug, Clone)]
pub struct OverloadRow {
    /// Scenario (`stalled_sink`, `shard_queue`, `sink_outage`).
    pub scenario: &'static str,
    /// Backpressure policy or fault-handling mode exercised.
    pub policy: &'static str,
    /// Distinct flows in the trace.
    pub flows: usize,
    /// Packets replayed.
    pub packets: u64,
    /// Units offered to the faulted stage (records or packets).
    pub offered: u64,
    /// Units that made it through.
    pub delivered: u64,
    /// Units shed — every one on a ledger, none silent.
    pub dropped: u64,
    /// Ingest throughput (Kpps) measured around the faulted stage.
    pub kpps: f64,
    /// Seals between the first export failure and the sink returning to
    /// `Healthy` (0 when no failure ever surfaced).
    pub recovery_epochs: u64,
}

impl OverloadRow {
    /// Fraction of offered units shed.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// The conservation identity every row must satisfy.
    pub fn conserved(&self) -> bool {
        self.offered == self.delivered + self.dropped
    }
}

/// Terminal sink counting delivered records through an [`Arc`] so the
/// count stays readable after the sink is boxed into the collector.
struct CountingSink {
    records: Arc<AtomicU64>,
}

impl RecordSink for CountingSink {
    fn export_epoch(&mut self, snapshot: &EpochSnapshot) -> io::Result<()> {
        self.records
            .fetch_add(snapshot.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// A [`FlowMonitor`] decorator that sleeps [`SLOW_BATCH`] per batch —
/// the slow consumer driving the `shard_queue` scenario.
struct Slow<M> {
    inner: M,
}

impl<M: FlowMonitor> FlowMonitor for Slow<M> {
    fn process_packet(&mut self, packet: &Packet) {
        self.inner.process_packet(packet);
    }

    fn process_batch(&mut self, packets: &[Packet]) {
        std::thread::sleep(SLOW_BATCH);
        self.inner.process_batch(packets);
    }

    fn flow_records(&self) -> Vec<FlowRecord> {
        self.inner.flow_records()
    }

    fn estimate_size(&self, key: &FlowKey) -> u32 {
        self.inner.estimate_size(key)
    }

    fn estimate_cardinality(&self) -> f64 {
        self.inner.estimate_cardinality()
    }

    fn heavy_hitters(&self, threshold: u32) -> Vec<FlowRecord> {
        self.inner.heavy_hitters(threshold)
    }

    fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cost(&self) -> CostSnapshot {
        self.inner.cost()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

impl<M: MergeableMonitor> MergeableMonitor for Slow<M> {
    fn merge_from(&mut self, other: &Self) {
        self.inner.merge_from(&other.inner);
    }

    fn combine_cardinality(estimates: &[f64]) -> f64 {
        M::combine_cardinality(estimates)
    }
}

/// Splits the trace into [`EPOCHS`] near-equal packet chunks.
fn epoch_chunks(trace: &Trace) -> impl Iterator<Item = &[Packet]> {
    let size = trace.packets().len().div_ceil(EPOCHS).max(1);
    trace.packets().chunks(size)
}

/// `stalled_sink`: every export sleeps [`STALL`]; ingest is timed
/// without the seals, proving the packet path does not pay for a slow
/// export path and the record stream stays lossless.
fn measure_stalled_sink(
    cfg: &RunConfig,
    budget: MemoryBudget,
    flows: usize,
    trace: &Trace,
) -> OverloadRow {
    let delivered = Arc::new(AtomicU64::new(0));
    let plan = FaultPlan::new(cfg.seed).with_stalls(1.0, STALL);
    let sink = FaultInjectingSink::new(
        CountingSink {
            records: Arc::clone(&delivered),
        },
        plan,
    );
    let mut collector = Collector::builder(AlgorithmKind::HashFlow)
        .budget(budget)
        .sink(Box::new(sink))
        .retention(4, BackpressurePolicy::DropOldest)
        .build()
        .expect("exhibit budget fits HashFlow");

    let mut offered = 0u64;
    let mut sealed = 0usize;
    let mut ingest_ns = 0u128;
    for chunk in epoch_chunks(trace) {
        let start = Instant::now();
        collector.process_batch(chunk);
        ingest_ns += start.elapsed().as_nanos();
        offered += collector.seal().len() as u64;
        sealed += 1;
    }
    // The retention window shed the older reports — on the ledger.
    let retention = collector.retention_drop_stats();
    assert_eq!(
        retention.offered_epochs(),
        sealed as u64,
        "stalled_sink: retention ledger must see every seal"
    );
    assert_eq!(
        retention.delivered_epochs(),
        retention.offered_epochs() - retention.dropped_epochs(),
        "stalled_sink: retention ledger must conserve"
    );
    // Stalls delay exports; they must never lose or duplicate them.
    collector
        .finish()
        .expect("stalls deliver, no errors surface");
    let delivered = delivered.load(Ordering::Relaxed);
    assert_eq!(delivered, offered, "stalled_sink: record stream lost data");

    let packets = trace.packets().len() as u64;
    OverloadRow {
        scenario: "stalled_sink",
        policy: "block",
        flows,
        packets,
        offered,
        delivered,
        dropped: 0,
        kpps: packets as f64 * 1e6 / ingest_ns.max(1) as f64,
        recovery_epochs: 0,
    }
}

/// `shard_queue`: dispatcher vs a consumer that is [`SLOW_BATCH`] slower
/// per batch, under the given queue policy. Offered/delivered/dropped
/// come from the shard queue's own [`DropStats`] ledger and are
/// cross-checked against what the shards actually processed.
///
/// [`DropStats`]: hashflow_monitor::DropStats
fn measure_shard_queue(
    policy: BackpressurePolicy,
    budget: MemoryBudget,
    flows: usize,
    trace: &Trace,
) -> OverloadRow {
    let mut monitor = ShardedMonitor::with_budget(SHARDS, budget, |_, b| {
        Ok(Slow {
            inner: HashFlow::with_memory(b)?,
        })
    })
    .expect("exhibit budget splits across shards");
    monitor.set_queue_policy(policy);

    let report = monitor.ingest(trace.packets());
    let drops = monitor.queue_drop_stats();
    let (offered, delivered, dropped) = (
        drops.offered_records(),
        drops.delivered_records(),
        drops.dropped_records(),
    );

    let packets = trace.packets().len() as u64;
    assert_eq!(offered, packets, "shard_queue: every packet is offered");
    assert_eq!(
        report.dropped_packets, dropped,
        "shard_queue: ingest report and ledger must agree"
    );
    assert_eq!(
        delivered,
        monitor.cost().packets,
        "shard_queue: delivered packets must all reach a shard"
    );
    if policy == BackpressurePolicy::Block {
        assert_eq!(dropped, 0, "shard_queue: Block never sheds");
    }
    assert!(!monitor.is_degraded(), "overload is not a fault");

    OverloadRow {
        scenario: "shard_queue",
        policy: policy.label(),
        flows,
        packets,
        offered,
        delivered,
        dropped,
        kpps: if report.elapsed_ns == 0 {
            f64::INFINITY
        } else {
            packets as f64 * 1e6 / report.elapsed_ns as f64
        },
        recovery_epochs: 0,
    }
}

/// `sink_outage` / `retry`: a 3-export outage against a 4-attempt
/// [`RetrySink`]. The retry loop walks the export index past the outage
/// window, so the fault never surfaces at all.
fn measure_outage_retry(
    cfg: &RunConfig,
    budget: MemoryBudget,
    flows: usize,
    trace: &Trace,
) -> OverloadRow {
    let delivered = Arc::new(AtomicU64::new(0));
    let plan = FaultPlan::new(cfg.seed).with_outage(2..5);
    let faulty = FaultInjectingSink::new(
        CountingSink {
            records: Arc::clone(&delivered),
        },
        plan,
    );
    let retry = RetrySink::new(
        faulty,
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            jitter_seed: cfg.seed,
        },
    );
    let mut collector = Collector::builder(AlgorithmKind::HashFlow)
        .budget(budget)
        .sink(Box::new(retry))
        .build()
        .expect("exhibit budget fits HashFlow");

    let mut offered = 0u64;
    let start = Instant::now();
    for chunk in epoch_chunks(trace) {
        collector.process_batch(chunk);
        offered += collector.seal().len() as u64;
    }
    let elapsed_ns = start.elapsed().as_nanos();
    assert!(
        collector
            .sink_health()
            .iter()
            .all(|s| s.health == SinkHealth::Healthy && s.total_errors == 0),
        "outage_retry: retries must absorb the outage entirely"
    );
    collector
        .finish()
        .expect("no errors surface past the retry budget");
    let delivered = delivered.load(Ordering::Relaxed);
    assert_eq!(delivered, offered, "outage_retry: zero loss expected");

    let packets = trace.packets().len() as u64;
    OverloadRow {
        scenario: "sink_outage",
        policy: "retry",
        flows,
        packets,
        offered,
        delivered,
        dropped: 0,
        kpps: packets as f64 * 1e6 / elapsed_ns.max(1) as f64,
        recovery_epochs: 0,
    }
}

/// `sink_outage` / `quarantine`: an outage wider than the retry budget,
/// driven bare into the health machine. Tracks per-seal health to
/// measure recovery time and buckets every record as delivered, failed
/// or skipped — the three must sum back to offered.
fn measure_outage_quarantine(
    cfg: &RunConfig,
    budget: MemoryBudget,
    flows: usize,
    trace: &Trace,
) -> OverloadRow {
    let delivered = Arc::new(AtomicU64::new(0));
    let plan = FaultPlan::new(cfg.seed).with_outage(3..6);
    let sink = FaultInjectingSink::new(
        CountingSink {
            records: Arc::clone(&delivered),
        },
        plan,
    );
    let mut collector = Collector::builder(AlgorithmKind::HashFlow)
        .budget(budget)
        .sink(Box::new(sink))
        .sink_health_policy(HealthPolicy {
            quarantine_after: 2,
            probe_interval: 2,
        })
        .build()
        .expect("exhibit budget fits HashFlow");

    let mut offered = 0u64;
    let mut failed_records = 0u64;
    let mut errors_before = 0u64;
    let mut first_failure: Option<u64> = None;
    let mut recovered_at: Option<u64> = None;
    let start = Instant::now();
    for (i, chunk) in epoch_chunks(trace).enumerate() {
        collector.process_batch(chunk);
        let epoch_records = collector.seal().len() as u64;
        offered += epoch_records;
        let status = &collector.sink_health()[0];
        if status.total_errors > errors_before {
            // This seal's export failed: its records are lost, counted.
            failed_records += epoch_records;
            errors_before = status.total_errors;
            first_failure.get_or_insert(i as u64);
            recovered_at = None;
        } else if first_failure.is_some()
            && recovered_at.is_none()
            && status.health == SinkHealth::Healthy
        {
            recovered_at = Some(i as u64);
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let status = collector.sink_health().remove(0);
    assert_eq!(
        status.health,
        SinkHealth::Healthy,
        "outage_quarantine: the probe must bring the sink back"
    );
    assert!(
        status.recoveries >= 1,
        "outage_quarantine: recovery counted"
    );
    // Parked outage errors are all reported at finish — expected here.
    let errors = collector.finish().expect_err("outage errors must surface");
    assert_eq!(errors.len() as u64, status.total_errors);

    let delivered = delivered.load(Ordering::Relaxed);
    let dropped = failed_records + status.skipped_records;
    assert_eq!(
        offered,
        delivered + dropped,
        "outage_quarantine: delivered + failed + skipped must equal offered"
    );
    let recovery_epochs = match (first_failure, recovered_at) {
        (Some(f), Some(r)) => r - f,
        _ => 0,
    };
    assert!(
        recovery_epochs > 0,
        "outage_quarantine: recovery takes seals"
    );

    let packets = trace.packets().len() as u64;
    OverloadRow {
        scenario: "sink_outage",
        policy: "quarantine",
        flows,
        packets,
        offered,
        delivered,
        dropped,
        kpps: packets as f64 * 1e6 / elapsed_ns.max(1) as f64,
        recovery_epochs,
    }
}

/// Runs all overload/fault scenarios on the CAIDA production tier.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let paper_budget = setup::standard_budget(cfg);
    let budget =
        MemoryBudget::from_bytes(paper_budget.bytes() * 8).expect("8x standard budget is positive");
    let flows = cfg.scaled(800_000, 4_000);
    let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);

    let rows = vec![
        measure_stalled_sink(cfg, budget, flows, &trace),
        measure_shard_queue(BackpressurePolicy::Block, budget, flows, &trace),
        measure_shard_queue(BackpressurePolicy::DropNewest, budget, flows, &trace),
        measure_shard_queue(BackpressurePolicy::DropOldest, budget, flows, &trace),
        measure_outage_retry(cfg, budget, flows, &trace),
        measure_outage_quarantine(cfg, budget, flows, &trace),
    ];
    for row in &rows {
        assert!(
            row.conserved(),
            "{}/{}: offered {} != delivered {} + dropped {}",
            row.scenario,
            row.policy,
            row.offered,
            row.delivered,
            row.dropped
        );
    }

    let mut table = Table::new(
        "overload",
        &[
            "trace",
            "scenario",
            "policy",
            "flows",
            "packets",
            "offered",
            "delivered",
            "dropped",
            "drop_rate",
            "kpps",
            "recovery_epochs",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            Cell::from("CAIDA"),
            Cell::from(row.scenario),
            Cell::from(row.policy),
            Cell::Int(row.flows as i64),
            Cell::Int(row.packets as i64),
            Cell::Int(row.offered as i64),
            Cell::Int(row.delivered as i64),
            Cell::Int(row.dropped as i64),
            Cell::Float(row.drop_rate()),
            Cell::Float(row.kpps),
            Cell::Int(row.recovery_epochs as i64),
        ]);
    }

    let json = bench_json(&rows);
    let path = cfg.out_dir.join("BENCH_overload.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

/// Renders the machine-readable summary (hand-rolled flat JSON, like the
/// other `BENCH_*.json` emitters).
fn bench_json(rows: &[OverloadRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"overload\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA\",");
    let _ = writeln!(out, "  \"workload\": \"production\",");
    let _ = writeln!(out, "  \"epochs\": {EPOCHS},");
    let _ = writeln!(out, "  \"stall_ms\": {},", STALL.as_millis());
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"policy\": \"{}\", \"flows\": {}, \"packets\": {}, \
             \"offered\": {}, \"delivered\": {}, \"dropped\": {}, \"drop_rate\": {:.4}, \
             \"kpps\": {:.3}, \"recovery_epochs\": {}, \"conserved\": {}}}{comma}",
            r.scenario,
            r.policy,
            r.flows,
            r.packets,
            r.offered,
            r.delivered,
            r.dropped,
            r.drop_rate(),
            r.kpps,
            r.recovery_epochs,
            r.conserved(),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_run_and_conserve_at_smoke_scale() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        // stalled_sink + 3 shard policies + retry + quarantine.
        assert_eq!(tables[0].len(), 6);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_overload.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"overload\""));
        assert!(json.contains("\"scenario\": \"stalled_sink\""));
        assert!(json.contains("\"policy\": \"drop_newest\""));
        assert!(json.contains("\"policy\": \"drop_oldest\""));
        assert!(json.contains("\"policy\": \"quarantine\""));
        assert!(!json.contains("\"conserved\": false"));
    }
}
