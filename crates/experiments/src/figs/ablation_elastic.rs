//! Ablation (beyond the paper): ElasticSketch hardware version (the §IV-A
//! comparator) against the basic software version, at equal memory.
//!
//! The hardware version rides collisions down a 3-stage heavy pipeline
//! before touching the light part; the basic version sends every
//! non-evicting collision packet straight to the light part. This
//! experiment measures what the pipeline buys.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use elastic_sketch::{BasicElasticSketch, ElasticSketch};
use hashflow_metrics::evaluate;
use hashflow_monitor::FlowMonitor;
use hashflow_trace::TraceProfile;

/// Runs the hardware-vs-basic comparison across the Fig. 8 sweep.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let budget = setup::standard_budget(cfg);
    let sweep = setup::size_estimation_sweep(cfg);

    let mut table = Table::new(
        "ablation_elastic_variant",
        &["variant", "flows", "fsc", "size_are"],
    );
    for &flows in &sweep {
        let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);
        let mut variants: Vec<Box<dyn FlowMonitor>> = vec![
            Box::new(ElasticSketch::with_memory(budget).expect("fits")),
            Box::new(BasicElasticSketch::with_memory(budget).expect("fits")),
        ];
        for monitor in variants.iter_mut() {
            let report = evaluate(monitor.as_mut(), &trace, &[]);
            table.push_row(vec![
                Cell::from(report.algorithm),
                Cell::from(flows),
                Cell::Float(report.fsc),
                Cell::Float(report.size_are),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_produce_full_sweeps() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        assert_eq!(tables[0].len(), 2 * 5);
        for row in tables[0].rows() {
            if let (Cell::Float(fsc), Cell::Float(are)) = (&row[2], &row[3]) {
                assert!((0.0..=1.0).contains(fsc));
                assert!(*are >= 0.0);
            }
        }
    }

    #[test]
    fn hardware_pipeline_holds_at_least_as_many_records() {
        // Three sub-tables give evicted flows more places to land, so the
        // hardware version's FSC should not be materially worse.
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let mut hw = 0.0;
        let mut basic = 0.0;
        for row in tables[0].rows() {
            if let (Cell::Text(v), Cell::Float(fsc)) = (&row[0], &row[2]) {
                if v == "ElasticSketch" {
                    hw += fsc;
                } else {
                    basic += fsc;
                }
            }
        }
        assert!(hw >= basic * 0.9, "hardware {hw} vs basic {basic}");
    }
}
