//! Fig. 11 — throughput (modeled bmv2 Kpps, panel a), average hash
//! operations per packet (panel b) and average memory accesses per packet
//! (panel c), per trace and algorithm. Native Rust packet rates are
//! reported alongside; the criterion benches in `hashflow-bench` measure
//! the same quantity with statistical rigor.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use simswitch::SoftwareSwitch;

/// Runs the throughput/cost comparison.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(100_000, 2_000);
    let budget = setup::standard_budget(cfg);
    let switch = SoftwareSwitch::default();

    let results = setup::per_profile(|profile| {
        let trace = setup::trace_for(cfg, profile, flows);
        setup::comparison_monitors(budget, cfg.seed)
            .iter_mut()
            .map(|monitor| {
                let report = switch.replay(monitor.as_mut(), &trace);
                (monitor.name(), report)
            })
            .collect::<Vec<_>>()
    });

    let mut table = Table::new(
        "fig11_throughput_and_cost",
        &[
            "trace",
            "algorithm",
            "modeled_kpps",
            "avg_hashes",
            "avg_mem_accesses",
            "native_mpps",
        ],
    );
    for (profile, rows) in &results {
        for (name, report) in rows {
            table.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(*name),
                Cell::Float(report.modeled_kpps),
                Cell::Float(report.avg_hashes),
                Cell::Float(report.avg_accesses),
                Cell::Float(report.native_pps / 1e6),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn by_algorithm(table: &Table, trace: &str, col: usize) -> HashMap<String, f64> {
        let mut out = HashMap::new();
        for row in table.rows() {
            if let (Cell::Text(t), Cell::Text(a), Cell::Float(v)) = (&row[0], &row[1], &row[col]) {
                if t == trace {
                    out.insert(a.clone(), *v);
                }
            }
        }
        out
    }

    #[test]
    fn flowradar_is_slowest_and_hashes_most() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        for trace in ["CAIDA", "Campus", "ISP1", "ISP2"] {
            let kpps = by_algorithm(&tables[0], trace, 2);
            let hashes = by_algorithm(&tables[0], trace, 3);
            assert!(
                (hashes["FlowRadar"] - 7.0).abs() < 1e-9,
                "FlowRadar 7 hashes"
            );
            for alg in ["HashFlow", "HashPipe", "ElasticSketch"] {
                assert!(
                    kpps[alg] > kpps["FlowRadar"],
                    "{trace}: {alg} {} vs FlowRadar {}",
                    kpps[alg],
                    kpps["FlowRadar"]
                );
                assert!(hashes[alg] < hashes["FlowRadar"]);
            }
        }
    }

    #[test]
    fn hashflow_comparable_to_hashpipe_and_elastic() {
        // §IV-D: "HashFlow will perform comparably to HashPipe and
        // ElasticSketch, and much better than FlowRadar."
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        for trace in ["CAIDA", "Campus", "ISP1", "ISP2"] {
            let kpps = by_algorithm(&tables[0], trace, 2);
            let hf = kpps["HashFlow"];
            for alg in ["HashPipe", "ElasticSketch"] {
                let ratio = hf / kpps[alg];
                assert!(
                    (0.6..=1.7).contains(&ratio),
                    "{trace}: HashFlow {hf} vs {alg} {} (ratio {ratio})",
                    kpps[alg]
                );
            }
            // All algorithms land in the single-digit Kpps band of
            // Fig. 11(a), below the ~20 Kpps bare-forwarding baseline.
            for v in kpps.values() {
                assert!((0.5..20.0).contains(v), "kpps {v}");
            }
        }
    }

    #[test]
    fn hashes_within_worst_case_bounds() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        for trace in ["CAIDA", "Campus", "ISP1", "ISP2"] {
            let hashes = by_algorithm(&tables[0], trace, 3);
            for alg in ["HashFlow", "HashPipe", "ElasticSketch"] {
                assert!(
                    hashes[alg] <= 4.0 + 1e-9,
                    "{trace}: {alg} avg hashes {}",
                    hashes[alg]
                );
            }
        }
    }
}
