//! Fig. 7 — Relative Error of flow cardinality estimation, one panel per
//! trace, as the number of concurrent flows grows to 250 K.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};

/// Runs the cardinality comparison sweep.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let sweep = setup::flow_sweep(cfg);
    let results = setup::comparison_sweep(cfg, &sweep, |r| r.cardinality_re);

    let mut table = Table::new(
        "fig07_cardinality_re",
        &["trace", "flows", "algorithm", "re"],
    );
    for (profile, rows) in results {
        for (flows, algorithm, re) in rows {
            table.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(flows),
                Cell::from(algorithm),
                Cell::Float(re),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn avg_by_algorithm(table: &Table, trace: &str) -> HashMap<String, f64> {
        let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
        for row in table.rows() {
            if let (Cell::Text(t), Cell::Text(a), Cell::Float(v)) = (&row[0], &row[2], &row[3]) {
                if t == trace {
                    let e = sums.entry(a.clone()).or_insert((0.0, 0));
                    e.0 += v;
                    e.1 += 1;
                }
            }
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    #[test]
    fn estimators_beat_hashpipe() {
        // Fig. 7: HashFlow, ElasticSketch and FlowRadar stay accurate;
        // HashPipe "always performs badly" because it just counts held
        // records.
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        for trace in ["CAIDA", "Campus", "ISP1"] {
            let avg = avg_by_algorithm(&tables[0], trace);
            assert!(
                avg["HashFlow"] < avg["HashPipe"],
                "{trace}: HashFlow {} vs HashPipe {}",
                avg["HashFlow"],
                avg["HashPipe"]
            );
            assert!(
                avg["FlowRadar"] < 0.2,
                "{trace}: FlowRadar {}",
                avg["FlowRadar"]
            );
        }
    }

    #[test]
    fn hashflow_re_is_small() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        for trace in ["CAIDA", "ISP1"] {
            let avg = avg_by_algorithm(&tables[0], trace);
            assert!(
                avg["HashFlow"] < 0.25,
                "{trace}: HashFlow cardinality RE {}",
                avg["HashFlow"]
            );
        }
    }
}
