//! One module per paper exhibit. Each exposes
//! `run(&RunConfig) -> Vec<Table>`; the per-exhibit binaries and `run_all`
//! are thin wrappers around these.

pub mod ablation_digest;
pub mod ablation_elastic;
pub mod ablation_ordering;
pub mod ablation_promotion;
pub mod ablation_sampling;
pub mod equal_memory;
pub mod fig02_utilization;
pub mod fig04_depth;
pub mod fig05_weights;
pub mod fig06_fsc;
pub mod fig07_cardinality;
pub mod fig08_size_are;
pub mod fig09_hh_f1;
pub mod fig10_hh_are;
pub mod fig11_throughput;
pub mod hotpath;
pub mod obs_overhead;
pub mod overload;
pub mod query;
pub mod queryapps;
pub mod scaling_shards;
pub mod server_load;
pub mod table01_traces;
pub mod trace_overhead;
