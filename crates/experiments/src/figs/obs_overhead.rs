//! Beyond the paper: what runtime observability costs on the hot path.
//!
//! PR 7 threads a live [`MetricsRegistry`] through every pipeline stage —
//! ingest counters and batch histograms in the rotator, per-shard packet
//! counters and lane histograms in the merge layer, per-plan evaluation
//! counters in the query engine. Instrumentation that a collector cannot
//! afford to run is instrumentation that gets turned off, so this exhibit
//! measures the registry's packet-rate cost directly: the same monitor,
//! the same CAIDA trace, the same production-tier budget, replayed bare
//! and then with a registry attached.
//!
//! Three ingest paths, because the accounting strategy differs on each:
//!
//! * `scalar` — one packet at a time through the full collector pipeline.
//!   The rotator amortizes counter traffic behind a local pending block
//!   (flushed every few thousand packets), so the per-packet cost is a
//!   couple of integer adds.
//! * `batched` — the batched hot path; counters flush once per batch.
//! * `sharded4` — a 4-shard [`ShardedMonitor`] on the threaded ingest
//!   path, where each worker owns its per-shard counter and the queue
//!   gauges move once per batch, not per packet.
//!
//! Every instrumented run also proves the books balance: the registry's
//! packet counters must equal exactly `TRIALS x` the trace's packet count
//! when the run ends — observability that drops events under load would
//! be worse than none.
//!
//! The run writes `BENCH_obs.json` (the `obs_overhead` binary copies it
//! to the working directory and fails below [`SMOKE_FLOOR`]); the
//! committed copy carries the release-mode claim that every path keeps
//! >= 97% of its bare throughput at the production tier.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_collector::{AlgorithmKind, Collector, MetricsRegistry};
use hashflow_core::HashFlow;
use hashflow_monitor::{FlowMonitor, MemoryBudget};
use hashflow_shard::ShardedMonitor;
use hashflow_trace::{Trace, TraceProfile};
use simswitch::SoftwareSwitch;
use std::fmt::Write as _;

/// Wall-clock repetitions per path; the fastest is kept (same estimator
/// as the `hotpath` exhibit). Bare and instrumented replays interleave
/// within one trial loop so transient machine noise lands on both sides
/// of the ratio instead of biasing whichever side ran later.
pub const TRIALS: usize = 7;

/// Shard count on the threaded path — the N >= 4 tier the acceptance
/// criteria call out.
pub const SHARDS: usize = 4;

/// Floor on `instrumented / bare` enforced by the `obs_overhead` binary
/// (and the CI smoke run). Deliberately loose: scaled-down smoke traces
/// finish in microseconds, where timer noise dwarfs the real cost. The
/// <= 3% overhead claim is carried by the committed full-scale
/// `BENCH_obs.json`, not by this floor.
pub const SMOKE_FLOOR: f64 = 0.80;

/// One bare-vs-instrumented measurement on a single ingest path.
#[derive(Debug, Clone)]
pub struct ObsRow {
    /// Ingest path (`scalar`, `batched`, or `sharded4`).
    pub path: &'static str,
    /// Memory budget in bytes.
    pub budget_bytes: usize,
    /// Distinct flows in the trace.
    pub flows: usize,
    /// Packets replayed per trial.
    pub packets: u64,
    /// Throughput with no registry attached (Kpps, best of [`TRIALS`]).
    pub bare_kpps: f64,
    /// Throughput with a live registry (Kpps, best of [`TRIALS`]).
    pub instrumented_kpps: f64,
}

impl ObsRow {
    /// Instrumented over bare throughput; 1.0 = free, 0.97 = 3% tax.
    pub fn overhead_ratio(&self) -> f64 {
        self.instrumented_kpps / self.bare_kpps
    }
}

fn collector(budget: MemoryBudget, metrics: Option<&MetricsRegistry>) -> Collector {
    let mut builder = Collector::builder(AlgorithmKind::HashFlow).budget(budget);
    if let Some(registry) = metrics {
        builder = builder.with_metrics(registry.clone());
    }
    builder.build().expect("exhibit budget fits HashFlow")
}

fn measure_pipeline(
    path: &'static str,
    batched: bool,
    budget: MemoryBudget,
    flows: usize,
    trace: &Trace,
) -> ObsRow {
    let switch = SoftwareSwitch::default();
    let mut bare = collector(budget, None);
    let registry = MetricsRegistry::new();
    let mut instrumented = collector(budget, Some(&registry));

    let mut bare_kpps = 0.0f64;
    let mut instrumented_kpps = 0.0f64;
    let mut packets = 0u64;
    for _ in 0..TRIALS {
        let (b, i) = if batched {
            (
                switch.replay(&mut bare, trace),
                switch.replay(&mut instrumented, trace),
            )
        } else {
            (
                switch.replay_scalar(&mut bare, trace),
                switch.replay_scalar(&mut instrumented, trace),
            )
        };
        bare_kpps = bare_kpps.max(b.native_pps / 1e3);
        instrumented_kpps = instrumented_kpps.max(i.native_pps / 1e3);
        packets = b.packets;
    }

    // Exact accounting under load: counters survive the per-trial resets,
    // so TRIALS replays must land exactly TRIALS x packets on the ingest
    // counter. A lossy registry would invalidate the whole exhibit.
    let snapshot = instrumented
        .metrics_snapshot()
        .expect("registry attached at build time");
    assert_eq!(
        snapshot.counter("hashflow_ingest_packets_total", &[]),
        Some(TRIALS as u64 * packets),
        "{path}: ingest counter lost packets"
    );

    ObsRow {
        path,
        budget_bytes: budget.bytes(),
        flows,
        packets,
        bare_kpps,
        instrumented_kpps,
    }
}

fn sharded(budget: MemoryBudget) -> ShardedMonitor<HashFlow> {
    ShardedMonitor::with_budget(SHARDS, budget, |_, b| HashFlow::with_memory(b))
        .expect("exhibit budget splits across shards")
}

/// One threaded-ingest pass; Kpps from the report's own wall clock.
fn ingest_kpps(monitor: &mut ShardedMonitor<HashFlow>, trace: &Trace) -> f64 {
    monitor.reset();
    let report = monitor.ingest(trace.packets());
    if report.elapsed_ns == 0 {
        f64::INFINITY
    } else {
        trace.packets().len() as f64 * 1e6 / report.elapsed_ns as f64
    }
}

fn measure_sharded(budget: MemoryBudget, flows: usize, trace: &Trace) -> ObsRow {
    let mut bare = sharded(budget);
    let registry = MetricsRegistry::new();
    let mut instrumented = sharded(budget);
    instrumented.set_metrics(&registry);

    let mut bare_kpps = 0.0f64;
    let mut instrumented_kpps = 0.0f64;
    for _ in 0..TRIALS {
        bare_kpps = bare_kpps.max(ingest_kpps(&mut bare, trace));
        instrumented_kpps = instrumented_kpps.max(ingest_kpps(&mut instrumented, trace));
    }

    let packets = trace.packets().len() as u64;
    // Same books-balance check as the pipeline paths, summed across the
    // per-shard counters (resets leave registered counters cumulative).
    assert_eq!(
        registry
            .snapshot()
            .counter_sum("hashflow_shard_packets_total"),
        TRIALS as u64 * packets,
        "sharded4: shard counters lost packets"
    );

    ObsRow {
        path: "sharded4",
        budget_bytes: budget.bytes(),
        flows,
        packets,
        bare_kpps,
        instrumented_kpps,
    }
}

/// Runs the bare-vs-instrumented sweep on the CAIDA production tier.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let paper_budget = setup::standard_budget(cfg);
    let budget =
        MemoryBudget::from_bytes(paper_budget.bytes() * 8).expect("8x standard budget is positive");
    let flows = cfg.scaled(800_000, 4_000);
    let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);

    let rows = vec![
        measure_pipeline("scalar", false, budget, flows, &trace),
        measure_pipeline("batched", true, budget, flows, &trace),
        measure_sharded(budget, flows, &trace),
    ];

    let mut table = Table::new(
        "obs_overhead",
        &[
            "trace",
            "path",
            "budget_bytes",
            "flows",
            "packets",
            "bare_kpps",
            "instrumented_kpps",
            "overhead_ratio",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            Cell::from("CAIDA"),
            Cell::from(row.path),
            Cell::Int(row.budget_bytes as i64),
            Cell::Int(row.flows as i64),
            Cell::Int(row.packets as i64),
            Cell::Float(row.bare_kpps),
            Cell::Float(row.instrumented_kpps),
            Cell::Float(row.overhead_ratio()),
        ]);
    }

    let json = bench_json(&rows);
    let path = cfg.out_dir.join("BENCH_obs.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

/// Renders the machine-readable summary (hand-rolled flat JSON, like the
/// other `BENCH_*.json` emitters).
fn bench_json(rows: &[ObsRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"obs_overhead\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA\",");
    let _ = writeln!(out, "  \"workload\": \"production\",");
    let _ = writeln!(out, "  \"trials\": {TRIALS},");
    let _ = writeln!(out, "  \"smoke_floor\": {SMOKE_FLOOR},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"path\": \"{}\", \"budget_bytes\": {}, \"flows\": {}, \"packets\": {}, \
             \"bare_kpps\": {:.3}, \"instrumented_kpps\": {:.3}, \"overhead_ratio\": {:.4}}}{comma}",
            r.path,
            r.budget_bytes,
            r.flows,
            r.packets,
            r.bare_kpps,
            r.instrumented_kpps,
            r.overhead_ratio(),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_three_paths_and_emits_json() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        assert_eq!(tables[0].len(), 3);
        for row in tables[0].rows() {
            if let Cell::Float(ratio) = &row[7] {
                // The measurement (and its exact-accounting asserts) must
                // hold at any scale; the throughput claim itself belongs
                // to the committed release-mode BENCH_obs.json.
                assert!(*ratio > 0.0, "overhead ratio must be positive");
            } else {
                panic!("overhead_ratio column must be a float");
            }
        }
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_obs.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"obs_overhead\""));
        assert!(json.contains("\"path\": \"scalar\""));
        assert!(json.contains("\"path\": \"batched\""));
        assert!(json.contains("\"path\": \"sharded4\""));
        assert!(json.contains("overhead_ratio"));
    }
}
