//! Ablation (beyond the paper): the record-promotion rule on/off.
//!
//! §II motivates promotion as the mechanism that "bounces a flow back from
//! the summarized set to the accurate set when this flow becomes an
//! elephant". Disabling it leaves elephants that lost their initial
//! main-table race stranded in the ancillary table with saturating 8-bit
//! counters — this experiment quantifies the damage on heavy-hitter
//! detection and size estimation.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_core::{HashFlow, HashFlowConfig};
use hashflow_metrics::evaluate;

/// Runs the promotion ablation on all four profiles.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(250_000, 2_000);
    let budget = setup::standard_budget(cfg);
    let base = HashFlowConfig::with_memory(budget).expect("standard budget fits");

    let results = setup::per_profile(|profile| {
        let trace = setup::trace_for(cfg, profile, flows);
        let thresholds = [profile.heavy_hitter_thresholds()[0]];
        [true, false]
            .into_iter()
            .map(|promotion| {
                let config = HashFlowConfig::builder()
                    .main_cells(base.main_cells())
                    .ancillary_cells(base.ancillary_cells())
                    .promotion_enabled(promotion)
                    .seed(cfg.seed)
                    .build()
                    .expect("valid config");
                let mut hf = HashFlow::new(config).expect("constructible");
                let report = evaluate(&mut hf, &trace, &thresholds);
                (promotion, report)
            })
            .collect::<Vec<_>>()
    });

    let mut table = Table::new(
        "ablation_promotion",
        &["trace", "promotion", "fsc", "size_are", "hh_f1", "hh_are"],
    );
    for (profile, rows) in results {
        for (promotion, report) in rows {
            let hh = &report.heavy_hitters[0];
            table.push_row(vec![
                Cell::from(profile.name()),
                Cell::from(if promotion { "on" } else { "off" }),
                Cell::Float(report.fsc),
                Cell::Float(report.size_are),
                Cell::Float(hh.f1),
                Cell::Float(hh.size_are),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn promotion_helps_heavy_hitters() {
        let cfg = RunConfig::for_tests(0.04);
        let tables = run(&cfg);
        let mut f1: HashMap<(String, String), f64> = HashMap::new();
        for row in tables[0].rows() {
            if let (Cell::Text(t), Cell::Text(p), Cell::Float(v)) = (&row[0], &row[1], &row[4]) {
                f1.insert((t.clone(), p.clone()), *v);
            }
        }
        // Promotion must never hurt F1 materially, and should help on the
        // skewed traces where elephants get stranded.
        let mut wins = 0;
        for trace in ["CAIDA", "Campus", "ISP1", "ISP2"] {
            let on = f1[&(trace.to_owned(), "on".to_owned())];
            let off = f1[&(trace.to_owned(), "off".to_owned())];
            assert!(on >= off - 0.03, "{trace}: on {on} off {off}");
            if on > off + 1e-6 {
                wins += 1;
            }
        }
        assert!(wins >= 1, "promotion should strictly help somewhere");
    }
}
