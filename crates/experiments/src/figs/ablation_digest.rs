//! Ablation (beyond the paper): ancillary digest width.
//!
//! §III-A notes the 8-bit digest "may mix flows up, but with a small
//! chance". This experiment quantifies the trade: wider digests reduce
//! aliasing in the ancillary table (better size estimates for evicted
//! mice) but buy fewer cells per byte. The paper fixes 8 bits; we sweep
//! 4..16 at a constant total memory budget.

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_core::{HashFlow, HashFlowConfig};
use hashflow_metrics::evaluate;
use hashflow_trace::TraceProfile;
use hashflow_types::RECORD_BITS;

const DIGEST_WIDTHS: [u32; 4] = [4, 8, 12, 16];

/// Runs the digest-width ablation on the CAIDA profile.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let flows = cfg.scaled(100_000, 2_000);
    let budget = setup::standard_budget(cfg);
    let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);

    let mut table = Table::new(
        "ablation_digest_width",
        &[
            "digest_bits",
            "main_cells",
            "fsc",
            "size_are",
            "cardinality_re",
        ],
    );
    for bits in DIGEST_WIDTHS {
        // Keep main and ancillary cell counts equal (paper invariant) and
        // respend the whole budget at this digest width.
        let pair_bits = RECORD_BITS + (bits + 8) as usize;
        let cells = budget.bits() / pair_bits;
        let config = HashFlowConfig::builder()
            .main_cells(cells)
            .ancillary_cells(cells)
            .digest_bits(bits)
            .seed(cfg.seed)
            .build()
            .expect("valid digest config");
        let mut hf = HashFlow::new(config).expect("constructible");
        let report = evaluate(&mut hf, &trace, &[]);
        table.push_row(vec![
            Cell::from(bits),
            Cell::from(cells),
            Cell::Float(report.fsc),
            Cell::Float(report.size_are),
            Cell::Float(report.cardinality_re),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_digests_cost_main_cells() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let cells: Vec<i64> = tables[0]
            .rows()
            .iter()
            .map(|r| match &r[1] {
                Cell::Int(v) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(cells.windows(2).all(|w| w[0] > w[1]), "cells {cells:?}");
    }

    #[test]
    fn all_widths_produce_sane_metrics() {
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        for row in tables[0].rows() {
            if let (Cell::Float(fsc), Cell::Float(are)) = (&row[2], &row[3]) {
                assert!((0.0..=1.0).contains(fsc));
                assert!(*are >= 0.0);
            }
        }
    }
}
