//! Beyond the paper: live full-sort queries vs the sealed-snapshot query
//! engine.
//!
//! Before the collector pipeline API, every top-k question went through
//! `FlowMonitor::heavy_hitters` — walk the tables into a fresh `Vec`,
//! sort *all* records, truncate — and every size question was a
//! single-key virtual call that re-probed the live tables. The sealed
//! path amortizes the table walk into one `seal()` and then answers from
//! the immutable snapshot: `top_k` with a bounded heap (O(n log k)
//! instead of O(n log n), no re-walk), `estimate_sizes` with one batched
//! hash-map pass.
//!
//! Two workload tiers on the CAIDA profile, mirroring the `hotpath`
//! exhibit: `paper` (1 MB, 100 K flows) and `production` (8x both — the
//! tier the ROADMAP's production-scale direction cares about, where the
//! record store is far larger than L2 and the full sort hurts).
//!
//! Alongside the CSV table, the run writes `BENCH_query.json` (the
//! `query` binary also copies it to the working directory), extending the
//! repository's machine-readable performance trajectory
//! (`BENCH_shard.json`, `BENCH_hotpath.json`).

use crate::output::{Cell, Table};
use crate::{setup, RunConfig};
use hashflow_collector::{AlgorithmKind, MonitorBuilder};
use hashflow_monitor::{EpochSnapshot, FlowMonitor, MemoryBudget};
use hashflow_trace::TraceProfile;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock repetitions per path; the fastest is kept (the standard
/// noise-robust estimator for short serial timings).
pub const TRIALS: usize = 3;

/// Queries per timed loop (amortizes clock overhead).
const QUERIES: usize = 5;

/// Top-k size: a dashboard-scale ranking, far below the record count.
pub const TOP_K: usize = 100;

/// One live-vs-sealed query measurement.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Workload tier (`paper` or `production`).
    pub workload: &'static str,
    /// Monitor under test.
    pub monitor: &'static str,
    /// Records in the sealed report.
    pub records: usize,
    /// One-time cost of sealing the epoch (ms).
    pub seal_ms: f64,
    /// Per-query cost of the old path: live `heavy_hitters(0)` full sort,
    /// truncated to [`TOP_K`] (ms).
    pub fullsort_topk_ms: f64,
    /// Per-query cost of `EpochSnapshot::top_k(TOP_K)` (ms).
    pub snapshot_topk_ms: f64,
    /// Size-estimation batch size (keys per query).
    pub keys: usize,
    /// Per-batch cost of the old path: one live `estimate_size` call per
    /// key (ms).
    pub live_single_key_ms: f64,
    /// Per-batch cost of `EpochSnapshot::estimate_sizes` (ms).
    pub snapshot_batched_ms: f64,
}

impl QueryRow {
    /// Full-sort over bounded-heap top-k speedup.
    pub fn topk_speedup(&self) -> f64 {
        self.fullsort_topk_ms / self.snapshot_topk_ms
    }

    /// Single-key-loop over batched estimation speedup.
    pub fn estimate_speedup(&self) -> f64 {
        self.live_single_key_ms / self.snapshot_batched_ms
    }
}

/// Times `f` run [`QUERIES`] times, in ms per query, best of [`TRIALS`].
fn time_query<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..QUERIES {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3 / QUERIES as f64);
    }
    best
}

fn measure(
    workload: &'static str,
    monitor: &mut (dyn FlowMonitor + Send),
    keys: &[hashflow_types::FlowKey],
) -> QueryRow {
    // The old top-k path: every query walks the live tables and sorts the
    // whole report (heavy_hitters(0) is the full ranking), then truncates.
    let fullsort_topk_ms = time_query(|| {
        let mut hh = monitor.heavy_hitters(0);
        hh.truncate(TOP_K);
        hh
    });
    // The old size path: one virtual table probe per key.
    let live_single_key_ms = time_query(|| {
        keys.iter()
            .map(|k| monitor.estimate_size(k))
            .collect::<Vec<u32>>()
    });

    // Seal once (timed), query the immutable snapshot many times.
    let start = Instant::now();
    let snapshot = EpochSnapshot::capture(&*monitor);
    let seal_ms = start.elapsed().as_secs_f64() * 1e3;
    let snapshot_topk_ms = time_query(|| snapshot.top_k(TOP_K));
    let snapshot_batched_ms = time_query(|| snapshot.estimate_sizes(keys));

    QueryRow {
        workload,
        monitor: monitor.name(),
        records: snapshot.len(),
        seal_ms,
        fullsort_topk_ms,
        snapshot_topk_ms,
        keys: keys.len(),
        live_single_key_ms,
        snapshot_batched_ms,
    }
}

/// Runs the live-vs-sealed query sweep on the CAIDA profile.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let paper_budget = setup::standard_budget(cfg);
    let production_budget =
        MemoryBudget::from_bytes(paper_budget.bytes() * 8).expect("8x standard budget is positive");
    let paper_flows = cfg.scaled(100_000, 2_000);
    let production_flows = cfg.scaled(800_000, 4_000);

    let mut rows: Vec<QueryRow> = Vec::new();
    for (workload, budget, flows) in [
        ("paper", paper_budget, paper_flows),
        ("production", production_budget, production_flows),
    ] {
        let trace = setup::trace_for(cfg, TraceProfile::Caida, flows);
        // A watchlist-style query batch: every 8th flow of the universe
        // (reported and unreported keys both included).
        let keys: Vec<hashflow_types::FlowKey> = trace
            .ground_truth()
            .iter()
            .step_by(8)
            .map(|r| r.key())
            .collect();
        for kind in [AlgorithmKind::HashFlow, AlgorithmKind::FlowRadar] {
            let mut monitor = MonitorBuilder::new(kind)
                .budget(budget)
                .build()
                .expect("exhibit budget fits");
            monitor.process_trace(trace.packets());
            rows.push(measure(workload, monitor.as_mut(), &keys));
        }
    }

    let mut table = Table::new(
        "query",
        &[
            "trace",
            "workload",
            "monitor",
            "records",
            "seal_ms",
            "fullsort_topk_ms",
            "snapshot_topk_ms",
            "topk_speedup",
            "live_single_key_ms",
            "snapshot_batched_ms",
            "estimate_speedup",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            Cell::from("CAIDA"),
            Cell::from(row.workload),
            Cell::from(row.monitor),
            Cell::Int(row.records as i64),
            Cell::Float(row.seal_ms),
            Cell::Float(row.fullsort_topk_ms),
            Cell::Float(row.snapshot_topk_ms),
            Cell::Float(row.topk_speedup()),
            Cell::Float(row.live_single_key_ms),
            Cell::Float(row.snapshot_batched_ms),
            Cell::Float(row.estimate_speedup()),
        ]);
    }

    let json = bench_json(&rows);
    let path = cfg.out_dir.join("BENCH_query.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, &json))
        .is_err()
    {
        eprintln!("   !! failed to write {}", path.display());
    }

    vec![table]
}

/// Renders the machine-readable summary (hand-rolled flat JSON, like the
/// other `BENCH_*.json` emitters).
fn bench_json(rows: &[QueryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"exhibit\": \"query\",");
    let _ = writeln!(out, "  \"profile\": \"CAIDA\",");
    let _ = writeln!(out, "  \"top_k\": {TOP_K},");
    let _ = writeln!(out, "  \"trials\": {TRIALS},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"monitor\": \"{}\", \"records\": {}, \
             \"seal_ms\": {:.4}, \"fullsort_topk_ms\": {:.4}, \"snapshot_topk_ms\": {:.4}, \
             \"topk_speedup\": {:.3}, \"keys\": {}, \"live_single_key_ms\": {:.4}, \
             \"snapshot_batched_ms\": {:.4}, \"estimate_speedup\": {:.3}}}{comma}",
            r.workload,
            r.monitor,
            r.records,
            r.seal_ms,
            r.fullsort_topk_ms,
            r.snapshot_topk_ms,
            r.topk_speedup(),
            r.keys,
            r.live_single_key_ms,
            r.snapshot_batched_ms,
            r.estimate_speedup(),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_rows_and_json() {
        let cfg = RunConfig::for_tests(0.02);
        let tables = run(&cfg);
        // 2 workloads x 2 monitors.
        assert_eq!(tables[0].len(), 4);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_query.json")).unwrap();
        assert!(json.contains("\"exhibit\": \"query\""));
        assert!(json.contains("\"workload\": \"production\""));
        assert!(json.contains("topk_speedup"));
    }

    #[test]
    fn snapshot_topk_is_no_slower_at_scale() {
        // The committed BENCH_query.json carries the full-scale
        // release-mode claim (snapshot top-k beats the full sort on the
        // CAIDA production tier); scaled-down smoke runs only enforce a
        // sanity floor, and only for HashFlow, whose record store is
        // large enough for the asymptotics to matter — FlowRadar's report
        // shrinks to a few hundred records at paper scale, where sorting
        // everything and a bounded heap cost the same handful of
        // microseconds either way.
        let cfg = RunConfig::for_tests(0.05);
        let tables = run(&cfg);
        let hashflow_speedups: Vec<f64> = tables[0]
            .rows()
            .iter()
            .filter(|row| matches!(&row[2], Cell::Text(t) if t == "HashFlow"))
            .filter_map(|row| match &row[7] {
                Cell::Float(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(hashflow_speedups.len(), 2);
        for s in hashflow_speedups {
            if cfg!(debug_assertions) {
                assert!(s > 0.0, "unmeasured top-k query: {s}");
            } else {
                assert!(s > 0.8, "snapshot top-k regressed: {s}");
            }
        }
    }
}
