//! Tabular experiment output: aligned stdout rendering plus CSV export.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One cell of a result table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A label (trace name, algorithm name, ...).
    Text(String),
    /// An integer quantity (flow counts, thresholds, ...).
    Int(i64),
    /// A floating-point metric, rendered with four decimals.
    Float(f64),
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Self {
        Cell::Int(i64::from(v))
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.4}"),
        }
    }

    fn render_csv(&self) -> String {
        match self {
            Cell::Text(s) => {
                if s.contains(',') || s.contains('"') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v}"),
        }
    }
}

/// A named result table: one per figure panel or table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table called `name` with the given column headers.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            name: name.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's name (used as the CSV file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {} in table {}",
            row.len(),
            self.headers.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns rendered rows for assertions in tests.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Renders an aligned, human-readable view.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the CSV form.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(Cell::render_csv).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }

    /// Writes `<dir>/<name>.csv`, creating the directory as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Prints each table and saves it under `dir`; convenience used by every
/// experiment binary.
pub fn emit(tables: &[Table], dir: &Path) {
    for t in tables {
        println!("{}", t.render());
        match t.save_csv(dir) {
            Ok(path) => println!("   -> {}\n", path.display()),
            Err(e) => eprintln!("   !! failed to save {}: {e}\n", t.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("unit", &["trace", "flows", "fsc"]);
        t.push_row(vec!["CAIDA".into(), 250_000usize.into(), 0.2184f64.into()]);
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let r = sample().render();
        assert!(r.contains("CAIDA"));
        assert!(r.contains("250000"));
        assert!(r.contains("0.2184"));
        assert!(r.contains("== unit =="));
    }

    #[test]
    fn csv_round_layout() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("trace,flows,fsc"));
        assert_eq!(lines.next(), Some("CAIDA,250000,0.2184"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("hashflow-output-test");
        let path = sample().save_csv(&dir).unwrap();
        let content = fs::read_to_string(path).unwrap();
        assert!(content.starts_with("trace,flows,fsc"));
    }
}
