//! Shared experiment plumbing: equal-memory monitor construction (§IV-A)
//! and the standard sweeps of the evaluation figures.

use crate::RunConfig;
use hashflow_collector::{AlgorithmKind, MonitorBuilder};
use hashflow_monitor::{FlowMonitor, MemoryBudget};
use hashflow_trace::{Trace, TraceGenerator, TraceProfile};

/// The paper's standard memory budget: 1 MB (§IV-A), scaled by the run
/// configuration.
pub fn standard_budget(cfg: &RunConfig) -> MemoryBudget {
    let bytes = ((1u64 << 20) as f64 * cfg.scale).round() as usize;
    MemoryBudget::from_bytes(bytes.max(16 * 1024))
        .expect("scaled standard budget is always positive")
}

/// Builds the four §IV comparison algorithms at the same memory budget,
/// re-seeded with the experiment seed, via the registry
/// ([`AlgorithmKind::COMPARISON`] × [`MonitorBuilder`]).
///
/// # Panics
///
/// Panics if the budget is too small for any algorithm's minimum geometry
/// (the standard budget never is).
pub fn comparison_monitors(budget: MemoryBudget, seed: u64) -> Vec<Box<dyn FlowMonitor + Send>> {
    AlgorithmKind::COMPARISON
        .into_iter()
        .map(|kind| {
            MonitorBuilder::new(kind)
                .budget(budget)
                .seed(seed)
                .build()
                .unwrap_or_else(|e| panic!("standard budget fits {kind}: {e}"))
        })
        .collect()
}

/// The flow-count sweep of Fig. 6/7 (x-axis 0..250 K), scaled.
pub fn flow_sweep(cfg: &RunConfig) -> Vec<usize> {
    (1..=10).map(|i| cfg.scaled(25_000 * i, 100 * i)).collect()
}

/// The flow-count sweep of Fig. 8 (20 K..100 K), scaled.
pub fn size_estimation_sweep(cfg: &RunConfig) -> Vec<usize> {
    (1..=5).map(|i| cfg.scaled(20_000 * i, 100 * i)).collect()
}

/// Generates the trace for `profile` with `flows` flows, seeded from the
/// run configuration.
pub fn trace_for(cfg: &RunConfig, profile: TraceProfile, flows: usize) -> Trace {
    TraceGenerator::new(profile, cfg.seed).generate(flows)
}

/// Runs `f` once per profile, in parallel, preserving profile order in the
/// returned vector.
pub fn per_profile<T, F>(f: F) -> Vec<(TraceProfile, T)>
where
    T: Send,
    F: Fn(TraceProfile) -> T + Sync,
{
    let mut out: Vec<Option<(TraceProfile, T)>> = Vec::new();
    for _ in hashflow_trace::ALL_PROFILES {
        out.push(None);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, profile) in hashflow_trace::ALL_PROFILES.into_iter().enumerate() {
            let f = &f;
            handles.push((i, scope.spawn(move || (profile, f(profile)))));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("experiment worker panicked"));
        }
    });
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

/// One `(flow_count, algorithm_name, metric_value)` row per run of a
/// comparison sweep.
pub type SweepRows = Vec<(usize, &'static str, f64)>;

/// Shared driver for the Fig. 6/7/8 comparison sweeps: for every profile
/// (in parallel) and every flow count in `sweep`, runs the four §IV
/// algorithms at the standard budget and extracts one metric per run.
///
/// Returns `(profile, rows)` where each row is
/// `(flow_count, algorithm_name, metric_value)`.
pub fn comparison_sweep<F>(
    cfg: &RunConfig,
    sweep: &[usize],
    metric: F,
) -> Vec<(TraceProfile, SweepRows)>
where
    F: Fn(&hashflow_metrics::EvaluationReport) -> f64 + Sync,
{
    let budget = standard_budget(cfg);
    per_profile(|profile| {
        let mut rows = Vec::new();
        for &flows in sweep {
            // Accumulate metric sums per algorithm across trials.
            let mut sums: Vec<(&'static str, f64)> = Vec::new();
            for trial in 0..cfg.trials.max(1) {
                let seed = cfg.trial_seed(trial);
                let trace = TraceGenerator::new(profile, seed).generate(flows);
                for (i, monitor) in comparison_monitors(budget, seed).iter_mut().enumerate() {
                    let report = hashflow_metrics::evaluate(monitor.as_mut(), &trace, &[]);
                    let value = metric(&report);
                    match sums.get_mut(i) {
                        Some((_, sum)) => *sum += value,
                        None => sums.push((report.algorithm, value)),
                    }
                }
            }
            let trials = cfg.trials.max(1) as f64;
            for (algorithm, sum) in sums {
                rows.push((flows, algorithm, sum / trials));
            }
        }
        rows
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitors_share_budget_within_tolerance() {
        let budget = MemoryBudget::from_bytes(1 << 20).unwrap();
        let monitors = comparison_monitors(budget, 1);
        assert_eq!(monitors.len(), 4);
        for m in &monitors {
            let bits = m.memory_bits();
            assert!(bits <= budget.bits(), "{} exceeds budget: {bits}", m.name());
            assert!(
                bits > budget.bits() * 9 / 10,
                "{} underuses budget: {bits}",
                m.name()
            );
        }
        let names: Vec<&str> = monitors.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            ["HashFlow", "HashPipe", "ElasticSketch", "FlowRadar"]
        );
    }

    #[test]
    fn sweeps_scale() {
        let cfg = RunConfig::for_tests(0.01);
        let sweep = flow_sweep(&cfg);
        assert_eq!(sweep.len(), 10);
        assert_eq!(sweep[0], 250);
        assert_eq!(sweep[9], 2_500);
        assert_eq!(size_estimation_sweep(&cfg).len(), 5);
    }

    #[test]
    fn per_profile_preserves_order() {
        let results = per_profile(|p| p.name().len());
        let names: Vec<&str> = results.iter().map(|(p, _)| p.name()).collect();
        assert_eq!(names, ["CAIDA", "Campus", "ISP1", "ISP2"]);
    }

    #[test]
    fn standard_budget_has_floor() {
        let cfg = RunConfig::for_tests(1e-9);
        assert!(standard_budget(&cfg).bytes() >= 16 * 1024);
    }
}
