//! Evaluation metrics and harness for the §IV-A measurement applications.
//!
//! * **Flow Set Coverage (FSC)** — fraction of the `n` true flows for which
//!   an algorithm reports a record with the correct flow ID (Fig. 6).
//! * **Average Relative Error (ARE)** — mean of
//!   `|estimated/real - 1|` over queried flows, with missing estimates
//!   counting as 0 (Fig. 4, 5(b), 8, 10).
//! * **Relative Error (RE)** — `|estimated flows / n - 1|` for cardinality
//!   (Fig. 7).
//! * **F1 score** — harmonic mean of precision and recall for heavy-hitter
//!   detection (Fig. 9).
//!
//! [`evaluate`] runs one monitor over one trace and collects everything the
//! figures need in a single pass.
//!
//! # Examples
//!
//! ```
//! use hashflow_core::HashFlow;
//! use hashflow_metrics::{evaluate, GroundTruth};
//! use hashflow_monitor::MemoryBudget;
//! use hashflow_trace::{TraceGenerator, TraceProfile};
//!
//! let trace = TraceGenerator::new(TraceProfile::Caida, 1).generate(2_000);
//! let mut hf = HashFlow::with_memory(MemoryBudget::from_kib(64)?)?;
//! let report = evaluate(&mut hf, &trace, &[10]);
//! assert!(report.fsc > 0.9, "light load: almost all flows recorded");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hashflow_monitor::FlowMonitor;
use hashflow_trace::Trace;
use hashflow_types::{FlowKey, FlowRecord};
use std::collections::{HashMap, HashSet};

mod ground_truth;
pub use ground_truth::GroundTruth;

/// Flow Set Coverage: the fraction of true flows whose ID appears among the
/// reported records (§IV-A).
///
/// Reported records with IDs that are not true flows (e.g. digest aliases
/// or mis-decodes) do not count; duplicates of the same ID count once.
pub fn flow_set_coverage(reported: &[FlowRecord], truth: &GroundTruth) -> f64 {
    if truth.flow_count() == 0 {
        return 0.0;
    }
    let correct: HashSet<FlowKey> = reported
        .iter()
        .map(|r| r.key())
        .filter(|k| truth.contains(k))
        .collect();
    correct.len() as f64 / truth.flow_count() as f64
}

/// Average Relative Error of per-flow size estimates over **all** true
/// flows (§IV-A). A flow the algorithm knows nothing about contributes
/// `|0/real - 1| = 1`.
pub fn size_estimation_are<M: FlowMonitor + ?Sized>(monitor: &M, truth: &GroundTruth) -> f64 {
    if truth.flow_count() == 0 {
        return 0.0;
    }
    let total: f64 = truth
        .iter()
        .map(|(key, real)| {
            let est = monitor.estimate_size(key) as f64;
            (est / f64::from(real) - 1.0).abs()
        })
        .sum();
    total / truth.flow_count() as f64
}

/// Relative Error of a cardinality estimate against the true flow count
/// (§IV-A).
pub fn cardinality_relative_error(estimated: f64, true_flows: usize) -> f64 {
    if true_flows == 0 {
        return 0.0;
    }
    (estimated / true_flows as f64 - 1.0).abs()
}

/// Precision / recall / F1 / size-ARE of one heavy-hitter report
/// (Fig. 9/10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitterReport {
    /// Detection threshold `T` in packets.
    pub threshold: u32,
    /// Reported heavy hitters (`c1` in §IV-A).
    pub reported: usize,
    /// True heavy hitters (`c2`).
    pub actual: usize,
    /// Correctly reported heavy hitters (`c`).
    pub correct: usize,
    /// Precision `c / c1` (1 when nothing is reported and nothing exists).
    pub precision: f64,
    /// Recall `c / c2`.
    pub recall: f64,
    /// F1 = `2 * PR * RR / (PR + RR)`.
    pub f1: f64,
    /// ARE of the size estimates of the true heavy hitters.
    pub size_are: f64,
}

/// Evaluates heavy-hitter detection at one threshold.
///
/// The reported set is taken from [`FlowMonitor::heavy_hitters`]; the size
/// ARE is computed over the *true* heavy hitters, querying the monitor for
/// each (missing flows estimate 0, per §IV-A).
pub fn heavy_hitter_report<M: FlowMonitor + ?Sized>(
    monitor: &M,
    truth: &GroundTruth,
    threshold: u32,
) -> HeavyHitterReport {
    let reported = monitor.heavy_hitters(threshold);
    let true_hh: Vec<(FlowKey, u32)> = truth
        .iter()
        .filter(|&(_, count)| count >= threshold)
        .map(|(k, c)| (*k, c))
        .collect();
    let true_set: HashSet<FlowKey> = true_hh.iter().map(|(k, _)| *k).collect();
    let reported_keys: HashSet<FlowKey> = reported.iter().map(|r| r.key()).collect();
    let correct = reported_keys.intersection(&true_set).count();

    let precision = if reported_keys.is_empty() {
        if true_set.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        correct as f64 / reported_keys.len() as f64
    };
    let recall = if true_set.is_empty() {
        1.0
    } else {
        correct as f64 / true_set.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    let size_are = if true_hh.is_empty() {
        0.0
    } else {
        true_hh
            .iter()
            .map(|(key, real)| {
                let est = monitor.estimate_size(key) as f64;
                (est / f64::from(*real) - 1.0).abs()
            })
            .sum::<f64>()
            / true_hh.len() as f64
    };

    HeavyHitterReport {
        threshold,
        reported: reported_keys.len(),
        actual: true_set.len(),
        correct,
        precision,
        recall,
        f1,
        size_are,
    }
}

/// Everything one (monitor, trace) run produces, matching the four
/// applications of §IV-A.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Number of true flows fed.
    pub flows: usize,
    /// Packets fed.
    pub packets: usize,
    /// Flow Set Coverage (Fig. 6).
    pub fsc: f64,
    /// Size-estimation ARE (Fig. 8).
    pub size_are: f64,
    /// Cardinality RE (Fig. 7).
    pub cardinality_re: f64,
    /// Heavy-hitter reports, one per requested threshold (Fig. 9/10).
    pub heavy_hitters: Vec<HeavyHitterReport>,
    /// Per-packet cost counters (Fig. 11(b)/(c)).
    pub cost: hashflow_monitor::CostSnapshot,
}

/// Feeds `trace` to a **freshly reset** `monitor` and computes every
/// metric, with heavy hitters evaluated at each of `hh_thresholds`.
pub fn evaluate<M: FlowMonitor + ?Sized>(
    monitor: &mut M,
    trace: &Trace,
    hh_thresholds: &[u32],
) -> EvaluationReport {
    monitor.reset();
    monitor.process_trace(trace.packets());
    let truth = GroundTruth::from_records(trace.ground_truth());

    let records = monitor.flow_records();
    EvaluationReport {
        algorithm: monitor.name(),
        flows: truth.flow_count(),
        packets: trace.packets().len(),
        fsc: flow_set_coverage(&records, &truth),
        size_are: size_estimation_are(monitor, &truth),
        cardinality_re: cardinality_relative_error(
            monitor.estimate_cardinality(),
            truth.flow_count(),
        ),
        heavy_hitters: hh_thresholds
            .iter()
            .map(|&t| heavy_hitter_report(monitor, &truth, t))
            .collect(),
        cost: monitor.cost(),
    }
}

/// A perfect reference monitor (exact hash map) used to sanity-check the
/// metric implementations and as the "infinite memory" upper bound in
/// ablation experiments.
#[derive(Debug, Clone, Default)]
pub struct ExactMonitor {
    flows: HashMap<FlowKey, u32>,
    cost: hashflow_monitor::CostRecorder,
}

impl ExactMonitor {
    /// Creates an empty exact monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowMonitor for ExactMonitor {
    fn process_packet(&mut self, packet: &hashflow_types::Packet) {
        self.cost.start_packet();
        self.cost.record_hashes(1);
        self.cost.record_reads(1);
        self.cost.record_writes(1);
        *self.flows.entry(packet.key()).or_insert(0) += 1;
    }

    fn flow_records(&self) -> Vec<FlowRecord> {
        self.flows
            .iter()
            .map(|(k, c)| FlowRecord::new(*k, *c))
            .collect()
    }

    fn estimate_size(&self, key: &FlowKey) -> u32 {
        self.flows.get(key).copied().unwrap_or(0)
    }

    fn estimate_cardinality(&self) -> f64 {
        self.flows.len() as f64
    }

    fn memory_bits(&self) -> usize {
        self.flows.len() * hashflow_types::RECORD_BITS
    }

    fn name(&self) -> &'static str {
        "Exact"
    }

    fn cost(&self) -> hashflow_monitor::CostSnapshot {
        self.cost.snapshot()
    }

    fn reset(&mut self) {
        self.flows.clear();
        self.cost.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_trace::{TraceGenerator, TraceProfile};
    use hashflow_types::Packet;

    fn toy_truth() -> GroundTruth {
        GroundTruth::from_records(&[
            FlowRecord::new(FlowKey::from_index(1), 10),
            FlowRecord::new(FlowKey::from_index(2), 5),
            FlowRecord::new(FlowKey::from_index(3), 1),
        ])
    }

    #[test]
    fn fsc_counts_distinct_correct_ids() {
        let truth = toy_truth();
        let reported = vec![
            FlowRecord::new(FlowKey::from_index(1), 9),
            FlowRecord::new(FlowKey::from_index(1), 1), // duplicate: counts once
            FlowRecord::new(FlowKey::from_index(99), 4), // bogus: ignored
        ];
        assert!((flow_set_coverage(&reported, &truth) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(flow_set_coverage(&[], &truth), 0.0);
    }

    #[test]
    fn are_counts_missing_flows_as_one() {
        let truth = toy_truth();
        let mut exact = ExactMonitor::new();
        // Only flow 1 is known, with a perfect count.
        for _ in 0..10 {
            exact.process_packet(&Packet::new(FlowKey::from_index(1), 0, 64));
        }
        // flow1: 0 error; flows 2, 3: |0 - 1| = 1 each -> ARE = 2/3.
        let are = size_estimation_are(&exact, &truth);
        assert!((are - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cardinality_re_definition() {
        assert!((cardinality_relative_error(120.0, 100) - 0.2).abs() < 1e-12);
        assert!((cardinality_relative_error(80.0, 100) - 0.2).abs() < 1e-12);
        assert_eq!(cardinality_relative_error(100.0, 100), 0.0);
        assert_eq!(cardinality_relative_error(5.0, 0), 0.0);
    }

    #[test]
    fn heavy_hitter_f1_perfect_detection() {
        let mut exact = ExactMonitor::new();
        for rec in [
            FlowRecord::new(FlowKey::from_index(1), 10),
            FlowRecord::new(FlowKey::from_index(2), 5),
            FlowRecord::new(FlowKey::from_index(3), 1),
        ] {
            for _ in 0..rec.count() {
                exact.process_packet(&Packet::new(rec.key(), 0, 64));
            }
        }
        let truth = toy_truth();
        let report = heavy_hitter_report(&exact, &truth, 5);
        assert_eq!(report.actual, 2);
        assert_eq!(report.correct, 2);
        assert_eq!(report.f1, 1.0);
        assert_eq!(report.size_are, 0.0);
    }

    #[test]
    fn heavy_hitter_f1_partial_detection() {
        // Monitor that only knows flow 1.
        let mut exact = ExactMonitor::new();
        for _ in 0..10 {
            exact.process_packet(&Packet::new(FlowKey::from_index(1), 0, 64));
        }
        let truth = toy_truth();
        let report = heavy_hitter_report(&exact, &truth, 5);
        // reported = {1}, true = {1, 2}: PR = 1, RR = 0.5, F1 = 2/3.
        assert!((report.f1 - 2.0 / 3.0).abs() < 1e-12);
        // size ARE over true HH: flow1 exact (0), flow2 missing (1) -> 0.5.
        assert!((report.size_are - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_threshold_cases() {
        let exact = ExactMonitor::new();
        let truth = toy_truth();
        let report = heavy_hitter_report(&exact, &truth, 1000);
        assert_eq!(report.actual, 0);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.precision, 1.0);
    }

    #[test]
    fn evaluate_exact_monitor_is_perfect() {
        let trace = TraceGenerator::new(TraceProfile::Isp1, 3).generate(500);
        let mut exact = ExactMonitor::new();
        let report = evaluate(&mut exact, &trace, &[5, 50]);
        assert_eq!(report.fsc, 1.0);
        assert_eq!(report.size_are, 0.0);
        assert_eq!(report.cardinality_re, 0.0);
        assert!(report.heavy_hitters.iter().all(|h| h.f1 == 1.0));
        assert_eq!(report.packets, trace.packets().len());
        assert_eq!(report.flows, 500);
    }

    #[test]
    fn evaluate_resets_between_runs() {
        let trace = TraceGenerator::new(TraceProfile::Isp1, 4).generate(100);
        let mut exact = ExactMonitor::new();
        let first = evaluate(&mut exact, &trace, &[]);
        let second = evaluate(&mut exact, &trace, &[]);
        assert_eq!(first.fsc, second.fsc);
        assert_eq!(first.cost.packets, second.cost.packets);
    }
}
