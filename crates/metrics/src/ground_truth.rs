use hashflow_types::{FlowKey, FlowRecord};
use std::collections::HashMap;

/// Exact per-flow packet counts for one trace selection — the denominator
/// of every §IV-A metric.
///
/// # Examples
///
/// ```
/// use hashflow_metrics::GroundTruth;
/// use hashflow_types::{FlowKey, FlowRecord};
///
/// let truth = GroundTruth::from_records(&[FlowRecord::new(FlowKey::from_index(1), 4)]);
/// assert_eq!(truth.flow_count(), 1);
/// assert_eq!(truth.size_of(&FlowKey::from_index(1)), Some(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    sizes: HashMap<FlowKey, u32>,
    // First-seen flow order: metric sums iterate this so floating-point
    // accumulation order (and therefore every reported metric) is exactly
    // reproducible run to run.
    order: Vec<FlowKey>,
    total_packets: u64,
}

impl GroundTruth {
    /// Builds ground truth from exact flow records.
    pub fn from_records(records: &[FlowRecord]) -> Self {
        let mut truth = GroundTruth {
            sizes: HashMap::with_capacity(records.len()),
            order: Vec::with_capacity(records.len()),
            total_packets: 0,
        };
        for rec in records {
            if truth.sizes.insert(rec.key(), rec.count()).is_none() {
                truth.order.push(rec.key());
            }
            truth.total_packets += u64::from(rec.count());
        }
        truth
    }

    /// Builds ground truth by counting a raw packet stream — a fold of
    /// [`Self::observe`] over the packets.
    pub fn from_packets<'a, I: IntoIterator<Item = &'a hashflow_types::Packet>>(
        packets: I,
    ) -> Self {
        let mut truth = GroundTruth::default();
        for p in packets {
            truth.observe(p);
        }
        truth
    }

    /// Folds one packet into the truth — the streaming constructor, for
    /// paths that batch packets out of an iterator (the CLI's streaming
    /// pcap analysis) and cannot hold the capture in memory.
    pub fn observe(&mut self, packet: &hashflow_types::Packet) {
        match self.sizes.entry(packet.key()) {
            std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += 1,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(1);
                self.order.push(packet.key());
            }
        }
        self.total_packets += 1;
    }

    /// Number of distinct flows (`n` in the metric definitions).
    pub fn flow_count(&self) -> usize {
        self.sizes.len()
    }

    /// Total packets across all flows.
    pub const fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Exact size of `key`, if it is a real flow.
    pub fn size_of(&self, key: &FlowKey) -> Option<u32> {
        self.sizes.get(key).copied()
    }

    /// Whether `key` is a real flow of this trace.
    pub fn contains(&self, key: &FlowKey) -> bool {
        self.sizes.contains_key(key)
    }

    /// Iterates over `(flow, exact size)` pairs in first-seen order — a
    /// deterministic order, so metric accumulation is reproducible.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, u32)> + '_ {
        self.order.iter().map(|k| (k, self.sizes[k]))
    }

    /// Number of true heavy hitters at `threshold`.
    pub fn heavy_hitter_count(&self, threshold: u32) -> usize {
        self.sizes.values().filter(|&&c| c >= threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_types::Packet;

    #[test]
    fn from_packets_counts() {
        let packets: Vec<Packet> = (0..10)
            .map(|i| Packet::new(FlowKey::from_index(i % 3), 0, 64))
            .collect();
        let truth = GroundTruth::from_packets(&packets);
        assert_eq!(truth.flow_count(), 3);
        assert_eq!(truth.total_packets(), 10);
        assert_eq!(truth.size_of(&FlowKey::from_index(0)), Some(4));
        assert_eq!(truth.size_of(&FlowKey::from_index(1)), Some(3));
    }

    #[test]
    fn heavy_hitter_count_thresholds() {
        let truth = GroundTruth::from_records(&[
            FlowRecord::new(FlowKey::from_index(1), 100),
            FlowRecord::new(FlowKey::from_index(2), 10),
            FlowRecord::new(FlowKey::from_index(3), 1),
        ]);
        assert_eq!(truth.heavy_hitter_count(1), 3);
        assert_eq!(truth.heavy_hitter_count(10), 2);
        assert_eq!(truth.heavy_hitter_count(101), 0);
    }

    #[test]
    fn contains_and_iter() {
        let truth = GroundTruth::from_records(&[FlowRecord::new(FlowKey::from_index(9), 2)]);
        assert!(truth.contains(&FlowKey::from_index(9)));
        assert!(!truth.contains(&FlowKey::from_index(8)));
        assert_eq!(truth.iter().count(), 1);
    }

    #[test]
    fn observe_matches_from_packets() {
        let packets: Vec<Packet> = (0..25)
            .map(|i| Packet::new(FlowKey::from_index(i % 4), 0, 64))
            .collect();
        let bulk = GroundTruth::from_packets(&packets);
        let mut streamed = GroundTruth::default();
        for p in &packets {
            streamed.observe(p);
        }
        assert_eq!(streamed.total_packets(), bulk.total_packets());
        assert_eq!(streamed.flow_count(), bulk.flow_count());
        let a: Vec<(FlowKey, u32)> = streamed.iter().map(|(k, c)| (*k, c)).collect();
        let b: Vec<(FlowKey, u32)> = bulk.iter().map(|(k, c)| (*k, c)).collect();
        assert_eq!(a, b, "first-seen order preserved");
    }
}
