use hashflow_types::{FlowKey, FlowRecord};
use std::collections::HashMap;

/// Exact per-flow packet counts for one trace selection — the denominator
/// of every §IV-A metric.
///
/// # Examples
///
/// ```
/// use hashflow_metrics::GroundTruth;
/// use hashflow_types::{FlowKey, FlowRecord};
///
/// let truth = GroundTruth::from_records(&[FlowRecord::new(FlowKey::from_index(1), 4)]);
/// assert_eq!(truth.flow_count(), 1);
/// assert_eq!(truth.size_of(&FlowKey::from_index(1)), Some(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    sizes: HashMap<FlowKey, u32>,
    // Insertion-ordered entries: metric sums iterate this so floating-point
    // accumulation order (and therefore every reported metric) is exactly
    // reproducible run to run.
    entries: Vec<FlowRecord>,
    total_packets: u64,
}

impl GroundTruth {
    /// Builds ground truth from exact flow records.
    pub fn from_records(records: &[FlowRecord]) -> Self {
        let mut sizes = HashMap::with_capacity(records.len());
        let mut entries = Vec::with_capacity(records.len());
        let mut total = 0u64;
        for rec in records {
            if sizes.insert(rec.key(), rec.count()).is_none() {
                entries.push(*rec);
            }
            total += u64::from(rec.count());
        }
        GroundTruth {
            sizes,
            entries,
            total_packets: total,
        }
    }

    /// Builds ground truth by counting a raw packet stream.
    pub fn from_packets<'a, I: IntoIterator<Item = &'a hashflow_types::Packet>>(
        packets: I,
    ) -> Self {
        let mut sizes: HashMap<FlowKey, u32> = HashMap::new();
        let mut order: Vec<FlowKey> = Vec::new();
        let mut total = 0u64;
        for p in packets {
            match sizes.entry(p.key()) {
                std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(1);
                    order.push(p.key());
                }
            }
            total += 1;
        }
        let entries = order
            .into_iter()
            .map(|k| FlowRecord::new(k, sizes[&k]))
            .collect();
        GroundTruth {
            sizes,
            entries,
            total_packets: total,
        }
    }

    /// Number of distinct flows (`n` in the metric definitions).
    pub fn flow_count(&self) -> usize {
        self.sizes.len()
    }

    /// Total packets across all flows.
    pub const fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Exact size of `key`, if it is a real flow.
    pub fn size_of(&self, key: &FlowKey) -> Option<u32> {
        self.sizes.get(key).copied()
    }

    /// Whether `key` is a real flow of this trace.
    pub fn contains(&self, key: &FlowKey) -> bool {
        self.sizes.contains_key(key)
    }

    /// Iterates over `(flow, exact size)` pairs in first-seen order — a
    /// deterministic order, so metric accumulation is reproducible.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, u32)> + '_ {
        self.entries.iter().map(|r| (r.key_ref(), r.count()))
    }

    /// Number of true heavy hitters at `threshold`.
    pub fn heavy_hitter_count(&self, threshold: u32) -> usize {
        self.sizes.values().filter(|&&c| c >= threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_types::Packet;

    #[test]
    fn from_packets_counts() {
        let packets: Vec<Packet> = (0..10)
            .map(|i| Packet::new(FlowKey::from_index(i % 3), 0, 64))
            .collect();
        let truth = GroundTruth::from_packets(&packets);
        assert_eq!(truth.flow_count(), 3);
        assert_eq!(truth.total_packets(), 10);
        assert_eq!(truth.size_of(&FlowKey::from_index(0)), Some(4));
        assert_eq!(truth.size_of(&FlowKey::from_index(1)), Some(3));
    }

    #[test]
    fn heavy_hitter_count_thresholds() {
        let truth = GroundTruth::from_records(&[
            FlowRecord::new(FlowKey::from_index(1), 100),
            FlowRecord::new(FlowKey::from_index(2), 10),
            FlowRecord::new(FlowKey::from_index(3), 1),
        ]);
        assert_eq!(truth.heavy_hitter_count(1), 3);
        assert_eq!(truth.heavy_hitter_count(10), 2);
        assert_eq!(truth.heavy_hitter_count(101), 0);
    }

    #[test]
    fn contains_and_iter() {
        let truth = GroundTruth::from_records(&[FlowRecord::new(FlowKey::from_index(9), 2)]);
        assert!(truth.contains(&FlowKey::from_index(9)));
        assert!(!truth.contains(&FlowKey::from_index(8)));
        assert_eq!(truth.iter().count(), 1);
    }
}
