//! Statistical and determinism properties of the hashing crate, exercised
//! through its public API only.
//!
//! Three groups:
//! * known-answer sanity for the widened [`Murmur3`] (the canonical 32-bit
//!   vectors live next to the private reference function),
//! * independence checks for [`TabulationHash`] (the paper's ball-and-urn
//!   analysis in §III-B assumes the hash family behaves independently),
//! * determinism of [`HashFamily`] under a fixed master seed.

use hashflow_hashing::{
    digest_from_hash, fast_range, HashFamily, KeyHasher, Murmur3, TabulationHash, XxHash64,
};
use hashflow_types::FlowKey;

fn keys(n: u64) -> impl Iterator<Item = FlowKey> {
    (0..n).map(FlowKey::from_index)
}

// --- Murmur3 (widened 64-bit construction) -------------------------------

/// The widened hash must change whenever the underlying 32-bit hash does,
/// and its halves must come from decorrelated seeds: pin the structural
/// properties on a fixed corpus.
#[test]
fn murmur3_widened_is_injective_on_small_corpus() {
    let h = Murmur3::with_seed(0);
    let mut seen = std::collections::HashSet::new();
    for key in keys(50_000) {
        assert!(seen.insert(h.hash_key(&key)), "collision at {key:?}");
    }
}

#[test]
fn murmur3_empty_and_prefix_inputs_distinct() {
    let h = Murmur3::with_seed(1);
    let outputs = [
        h.hash_bytes(b""),
        h.hash_bytes(b"\0"),
        h.hash_bytes(b"\0\0"),
        h.hash_bytes(b"a"),
        h.hash_bytes(b"ab"),
        h.hash_bytes(b"abc"),
        h.hash_bytes(b"abcd"),
        h.hash_bytes(b"abcde"),
    ];
    let distinct: std::collections::HashSet<u64> = outputs.iter().copied().collect();
    assert_eq!(distinct.len(), outputs.len());
}

// --- Tabulation independence ---------------------------------------------

/// Pairwise (2-)independence proxy: for distinct keys x != y the events
/// "bucket(x) == bucket(y)" should occur with probability about 1/n.
#[test]
fn tabulation_pairwise_collision_rate_matches_uniform() {
    let h = TabulationHash::with_seed(42);
    let n = 64usize;
    let trials = 40_000;
    let mut collisions = 0usize;
    for i in 0..trials as u64 {
        let a = fast_range(h.hash_key(&FlowKey::from_index(2 * i)), n);
        let b = fast_range(h.hash_key(&FlowKey::from_index(2 * i + 1)), n);
        if a == b {
            collisions += 1;
        }
    }
    let expected = trials as f64 / n as f64; // 625
    let got = collisions as f64;
    assert!(
        (got - expected).abs() < expected * 0.25,
        "collision count {got} vs expected {expected}"
    );
}

/// Every output bit should be unbiased: across many keys, each of the 64
/// bits is set about half the time.
#[test]
fn tabulation_output_bits_are_unbiased() {
    let h = TabulationHash::with_seed(7);
    let trials = 20_000u64;
    let mut ones = [0u32; 64];
    for key in keys(trials) {
        let v = h.hash_key(&key);
        for (bit, count) in ones.iter_mut().enumerate() {
            *count += ((v >> bit) & 1) as u32;
        }
    }
    let expect = trials as f64 / 2.0;
    for (bit, &count) in ones.iter().enumerate() {
        assert!(
            (f64::from(count) - expect).abs() < expect * 0.05,
            "bit {bit} set {count} times, expected about {expect}"
        );
    }
}

/// Keys differing in a single byte of the five-tuple must land in
/// uncorrelated buckets (no alignment artifacts from the per-position
/// tables).
#[test]
fn tabulation_single_byte_neighbors_spread_uniformly() {
    let h = TabulationHash::with_seed(13);
    let n = 32usize;
    let trials = 20_000u64;
    let mut histogram = vec![0usize; n];
    for i in 0..trials {
        let base = FlowKey::from_index(i);
        let neighbor = FlowKey::from_index(i ^ 1);
        let delta =
            (fast_range(h.hash_key(&base), n) + n - fast_range(h.hash_key(&neighbor), n)) % n;
        histogram[delta] += 1;
    }
    let expect = trials as f64 / n as f64;
    for (delta, &count) in histogram.iter().enumerate() {
        assert!(
            (count as f64 - expect).abs() < expect * 0.25,
            "bucket distance {delta} hit {count} times, expected about {expect}"
        );
    }
}

// --- Family determinism under a fixed seed --------------------------------

fn family_fingerprint<H: KeyHasher>(members: usize, seed: u64) -> Vec<u64> {
    let family = HashFamily::<H>::new(members, seed);
    let mut out = Vec::new();
    for key in keys(256) {
        for i in 0..members {
            out.push(family.hash(i, &key));
        }
    }
    out
}

#[test]
fn families_are_deterministic_under_fixed_seed() {
    assert_eq!(
        family_fingerprint::<XxHash64>(4, 0xdead_beef),
        family_fingerprint::<XxHash64>(4, 0xdead_beef)
    );
    assert_eq!(
        family_fingerprint::<Murmur3>(4, 0xdead_beef),
        family_fingerprint::<Murmur3>(4, 0xdead_beef)
    );
    assert_eq!(
        family_fingerprint::<TabulationHash>(4, 0xdead_beef),
        family_fingerprint::<TabulationHash>(4, 0xdead_beef)
    );
}

#[test]
fn families_differ_across_seeds_and_hashers() {
    let a = family_fingerprint::<XxHash64>(3, 1);
    let b = family_fingerprint::<XxHash64>(3, 2);
    assert_ne!(a, b, "different master seeds must give different families");
    let c = family_fingerprint::<Murmur3>(3, 1);
    assert_ne!(a, c, "different hashers must not produce the same stream");
}

/// A family's member list is a pure function of (members, seed): growing the
/// family must not change the earlier members.
#[test]
fn family_members_stable_under_growth() {
    let small = HashFamily::<XxHash64>::new(2, 99);
    let large = HashFamily::<XxHash64>::new(6, 99);
    for key in keys(64) {
        for i in 0..2 {
            assert_eq!(small.hash(i, &key), large.hash(i, &key), "member {i}");
        }
    }
}

/// Digest extraction is deterministic and never produces the reserved
/// empty-cell value, whatever hash feeds it.
#[test]
fn digests_from_any_family_member_are_nonzero() {
    let family = HashFamily::<TabulationHash>::new(3, 5);
    for key in keys(10_000) {
        for i in 0..3 {
            let d = digest_from_hash(family.hash(i, &key), 12);
            assert!((1..1 << 12).contains(&d));
        }
    }
}
