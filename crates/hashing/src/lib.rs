//! Seeded, independent hash functions for flow keys.
//!
//! Every algorithm in the paper needs a family of *independent* hash
//! functions (`h_1..h_d` plus `g_1` in HashFlow's Algorithm 1). This crate
//! provides three from-scratch implementations — xxHash64, Murmur3 (x86
//! 32-bit variant), and Zobrist-style tabulation hashing — behind a common
//! [`KeyHasher`] trait, plus [`HashFamily`], which derives any number of
//! independent members from a single seed.
//!
//! All hashers are deterministic functions of `(seed, key bytes)` so that
//! every experiment in the workspace is reproducible.
//!
//! # Examples
//!
//! ```
//! use hashflow_hashing::{HashFamily, KeyHasher, XxHash64};
//! use hashflow_types::FlowKey;
//!
//! let family = HashFamily::<XxHash64>::new(4, 0xdead_beef);
//! let key = FlowKey::from_index(7);
//! let h0 = family.hash(0, &key);
//! let h1 = family.hash(1, &key);
//! assert_ne!(h0, h1, "members of the family are independent");
//! assert_eq!(h0, family.hash(0, &key), "hashing is deterministic");
//! ```

// `deny` rather than `forbid`: the `prefetch` module scopes one allow
// around the (side-effect-free) prefetch intrinsic.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod family;
mod lanes;
mod murmur3;
mod prefetch;
mod tabulation;
mod xxhash;

pub use family::{digest_from_hash, DigestFn, HashFamily};
pub use lanes::{compute_lanes, HashLanes};
pub use murmur3::Murmur3;
pub use prefetch::prefetch_read;
pub use tabulation::TabulationHash;
pub use xxhash::XxHash64;

use hashflow_types::FlowKey;

/// A seeded hash function over flow keys.
///
/// Implementations must be pure functions of `(seed, key)`: the same inputs
/// always produce the same 64-bit output, and different seeds behave as
/// independent functions (the property the paper's ball-and-urn analysis in
/// §III-B relies on).
pub trait KeyHasher: Clone + std::fmt::Debug {
    /// Creates a hasher instance for a given seed.
    fn with_seed(seed: u64) -> Self;

    /// Hashes raw bytes to a 64-bit value.
    fn hash_bytes(&self, bytes: &[u8]) -> u64;

    /// Hashes a flow key (its canonical 13-byte serialization).
    fn hash_key(&self, key: &FlowKey) -> u64 {
        self.hash_bytes(&key.to_bytes())
    }
}

/// Maps a 64-bit hash uniformly onto `[0, n)` without modulo bias.
///
/// Uses the widening-multiply trick (Lemire's fast range reduction): the high
/// 64 bits of `hash * n` are uniform over `[0, n)` when `hash` is uniform
/// over `u64`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use hashflow_hashing::fast_range;
/// assert!(fast_range(u64::MAX, 10) < 10);
/// assert_eq!(fast_range(0, 10), 0);
/// ```
pub fn fast_range(hash: u64, n: usize) -> usize {
    assert!(n > 0, "range must be non-empty");
    (((hash as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_range_in_bounds() {
        for h in [0u64, 1, 12345, u64::MAX / 2, u64::MAX] {
            for n in [1usize, 2, 7, 100, 1 << 20] {
                assert!(fast_range(h, n) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn fast_range_rejects_zero() {
        fast_range(1, 0);
    }

    #[test]
    fn fast_range_is_roughly_uniform() {
        // Feed sequential hashes through a hasher then reduce to 8 buckets;
        // each bucket should get a fair share.
        let hasher = XxHash64::with_seed(99);
        let mut buckets = [0usize; 8];
        let trials = 80_000;
        for i in 0..trials {
            let h = hasher.hash_bytes(&(i as u64).to_le_bytes());
            buckets[fast_range(h, 8)] += 1;
        }
        let expect = trials / 8;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64 - expect as f64).abs() < expect as f64 * 0.05,
                "bucket {i} holds {b}, expected about {expect}"
            );
        }
    }
}
