use crate::{fast_range, KeyHasher};
use hashflow_types::FlowKey;

/// A family of `d` independent seeded hash functions.
///
/// HashFlow's Algorithm 1 needs `h_1 .. h_d` for the main table plus `g_1`
/// for the ancillary table, and every baseline needs its own independent set.
/// A `HashFamily` derives each member from `(master_seed, member_index)` with
/// a SplitMix64 expansion, so one seed fully determines the behaviour of an
/// algorithm instance.
///
/// # Examples
///
/// ```
/// use hashflow_hashing::{HashFamily, XxHash64};
/// use hashflow_types::FlowKey;
///
/// let family = HashFamily::<XxHash64>::new(3, 42);
/// let key = FlowKey::from_index(10);
/// let idx = family.bucket(1, &key, 1000);
/// assert!(idx < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct HashFamily<H: KeyHasher> {
    members: Vec<H>,
    master_seed: u64,
}

impl<H: KeyHasher> HashFamily<H> {
    /// Creates a family of `members` independent hash functions derived from
    /// `master_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `members == 0`; every algorithm needs at least one hash.
    pub fn new(members: usize, master_seed: u64) -> Self {
        assert!(members > 0, "a hash family needs at least one member");
        let members = (0..members)
            .map(|i| {
                // SplitMix64 the pair so member seeds are far apart even for
                // adjacent master seeds.
                let mut z =
                    master_seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                H::with_seed(z ^ (z >> 31))
            })
            .collect();
        HashFamily {
            members,
            master_seed,
        }
    }

    /// Number of hash functions in the family.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the family has no members (never true in practice;
    /// construction requires at least one).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The master seed the family was derived from.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Hashes `key` with member `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn hash(&self, i: usize, key: &FlowKey) -> u64 {
        self.members[i].hash_key(key)
    }

    /// Hashes raw bytes with member `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn hash_bytes(&self, i: usize, bytes: &[u8]) -> u64 {
        self.members[i].hash_bytes(bytes)
    }

    /// Maps `key` to a bucket index in `[0, n)` using member `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or `n == 0`.
    pub fn bucket(&self, i: usize, key: &FlowKey, n: usize) -> usize {
        fast_range(self.hash(i, key), n)
    }
}

/// Extracts a `width`-bit digest of a flow key from a hash value.
///
/// §III-A: "a digest can be generated from the hashing result of the flow ID
/// with any `h_i`", and Algorithm 1 line 15 uses
/// `digest = h1(flowID) % 2^digest_width`. Digest 0 is reserved by callers to
/// mean "empty cell", so this maps the raw `width`-bit value into
/// `[1, 2^width)` by folding 0 to 1 — a 1/2^width bias that keeps the
/// empty-cell sentinel unambiguous.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 32.
///
/// # Examples
///
/// ```
/// use hashflow_hashing::digest_from_hash;
/// assert_eq!(digest_from_hash(0x100, 8), 1); // low 8 bits are 0 -> folded to 1
/// assert_eq!(digest_from_hash(0xab, 8), 0xab);
/// ```
pub fn digest_from_hash(hash: u64, width: u32) -> u32 {
    assert!((1..=32).contains(&width), "digest width must be in 1..=32");
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let d = (hash as u32) & mask;
    if d == 0 {
        1
    } else {
        d
    }
}

/// Function type used by digest-keyed tables. See [`digest_from_hash`].
pub type DigestFn = fn(u64, u32) -> u32;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Murmur3, TabulationHash, XxHash64};

    #[test]
    fn members_are_independent() {
        let family = HashFamily::<XxHash64>::new(4, 0);
        let key = FlowKey::from_index(1);
        let values: Vec<u64> = (0..4).map(|i| family.hash(i, &key)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(values[i], values[j], "members {i} and {j} collide");
            }
        }
    }

    #[test]
    fn adjacent_master_seeds_decorrelate() {
        let a = HashFamily::<XxHash64>::new(1, 100);
        let b = HashFamily::<XxHash64>::new(1, 101);
        let key = FlowKey::from_index(2);
        assert_ne!(a.hash(0, &key), b.hash(0, &key));
    }

    #[test]
    fn bucket_is_in_range_for_all_hashers() {
        let key = FlowKey::from_index(77);
        let xx = HashFamily::<XxHash64>::new(3, 5);
        let mm = HashFamily::<Murmur3>::new(3, 5);
        let tb = HashFamily::<TabulationHash>::new(3, 5);
        for i in 0..3 {
            assert!(xx.bucket(i, &key, 17) < 17);
            assert!(mm.bucket(i, &key, 17) < 17);
            assert!(tb.bucket(i, &key, 17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_member_family_rejected() {
        let _ = HashFamily::<XxHash64>::new(0, 0);
    }

    #[test]
    fn digest_never_zero() {
        for h in 0..10_000u64 {
            let d = digest_from_hash(h << 8, 8);
            assert!((1..=0xff).contains(&d));
        }
        assert_eq!(digest_from_hash(u64::MAX, 32), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "digest width")]
    fn digest_width_zero_rejected() {
        digest_from_hash(1, 0);
    }

    #[test]
    fn len_and_seed_accessors() {
        let f = HashFamily::<XxHash64>::new(5, 9);
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
        assert_eq!(f.master_seed(), 9);
    }
}
