use crate::KeyHasher;

const PRIME64_1: u64 = 0x9e37_79b1_85eb_ca87;
const PRIME64_2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const PRIME64_3: u64 = 0x1656_67b1_9e37_79f9;
const PRIME64_4: u64 = 0x85eb_ca77_c2b2_ae63;
const PRIME64_5: u64 = 0x27d4_eb2f_1656_67c5;

/// xxHash64, implemented from the reference specification.
///
/// Chosen as the default hasher for the table lookups: it is fast on short
/// keys (a flow key is 13 bytes, a single stripe) and passes avalanche tests,
/// which the uniformity assumption of the paper's utilization model needs.
///
/// # Examples
///
/// ```
/// use hashflow_hashing::{KeyHasher, XxHash64};
/// let h = XxHash64::with_seed(0);
/// assert_eq!(h.hash_bytes(b"abc"), h.hash_bytes(b"abc"));
/// assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abd"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XxHash64 {
    seed: u64,
}

impl XxHash64 {
    /// The seed this hasher was built with.
    pub const fn seed(&self) -> u64 {
        self.seed
    }
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[inline]
fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice"))
}

impl KeyHasher for XxHash64 {
    fn with_seed(seed: u64) -> Self {
        XxHash64 { seed }
    }

    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let len = bytes.len();
        let mut remaining = bytes;
        let mut h: u64;

        if len >= 32 {
            let mut v1 = self.seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
            let mut v2 = self.seed.wrapping_add(PRIME64_2);
            let mut v3 = self.seed;
            let mut v4 = self.seed.wrapping_sub(PRIME64_1);
            while remaining.len() >= 32 {
                v1 = round(v1, read_u64(remaining));
                v2 = round(v2, read_u64(&remaining[8..]));
                v3 = round(v3, read_u64(&remaining[16..]));
                v4 = round(v4, read_u64(&remaining[24..]));
                remaining = &remaining[32..];
            }
            h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = merge_round(h, v1);
            h = merge_round(h, v2);
            h = merge_round(h, v3);
            h = merge_round(h, v4);
        } else {
            h = self.seed.wrapping_add(PRIME64_5);
        }

        h = h.wrapping_add(len as u64);

        while remaining.len() >= 8 {
            h ^= round(0, read_u64(remaining));
            h = h
                .rotate_left(27)
                .wrapping_mul(PRIME64_1)
                .wrapping_add(PRIME64_4);
            remaining = &remaining[8..];
        }
        if remaining.len() >= 4 {
            h ^= u64::from(read_u32(remaining)).wrapping_mul(PRIME64_1);
            h = h
                .rotate_left(23)
                .wrapping_mul(PRIME64_2)
                .wrapping_add(PRIME64_3);
            remaining = &remaining[4..];
        }
        for &byte in remaining {
            h ^= u64::from(byte).wrapping_mul(PRIME64_5);
            h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        }

        avalanche(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors produced by the canonical xxHash implementation
    // (xxhsum / the xxhash crate agree on these).
    #[test]
    fn reference_vectors() {
        let h0 = XxHash64::with_seed(0);
        assert_eq!(h0.hash_bytes(b""), 0xef46_db37_51d8_e999);
        assert_eq!(h0.hash_bytes(b"a"), 0xd24e_c4f1_a98c_6e5b);
        assert_eq!(h0.hash_bytes(b"abc"), 0x44bc_2cf5_ad77_0999);
        let h1 = XxHash64::with_seed(1);
        assert_ne!(h1.hash_bytes(b""), h0.hash_bytes(b""));
    }

    #[test]
    fn long_input_uses_stripe_loop() {
        let data: Vec<u8> = (0..=255u8).collect();
        let h = XxHash64::with_seed(0);
        // Stability check: value computed once with the canonical algorithm.
        assert_eq!(h.hash_bytes(&data), h.hash_bytes(&data));
        assert_ne!(h.hash_bytes(&data[..32]), h.hash_bytes(&data[..33]));
    }

    #[test]
    fn different_seeds_differ() {
        let a = XxHash64::with_seed(7).hash_bytes(b"flow");
        let b = XxHash64::with_seed(8).hash_bytes(b"flow");
        assert_ne!(a, b);
    }

    #[test]
    fn seed_accessor() {
        assert_eq!(XxHash64::with_seed(42).seed(), 42);
    }
}
