use crate::KeyHasher;

/// MurmurHash3 (x86, 32-bit variant), widened to 64 bits by hashing with two
/// derived seeds and concatenating the halves.
///
/// Murmur3-32 is the hash most P4/switch implementations of these sketches
/// use in practice, so it is provided as a drop-in alternative to
/// [`crate::XxHash64`] to check that none of the reproduced results depend on
/// the specific hash function.
///
/// # Examples
///
/// ```
/// use hashflow_hashing::{KeyHasher, Murmur3};
/// let h = Murmur3::with_seed(5);
/// assert_eq!(h.hash_bytes(b"xyz"), h.hash_bytes(b"xyz"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Murmur3 {
    seed_lo: u32,
    seed_hi: u32,
}

fn murmur3_x86_32(bytes: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h = seed;
    let mut chunks = bytes.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        k = k.wrapping_mul(C1).rotate_left(15).wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(13).wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k: u32 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k |= u32::from(b) << (8 * i);
        }
        k = k.wrapping_mul(C1).rotate_left(15).wrapping_mul(C2);
        h ^= k;
    }

    h ^= bytes.len() as u32;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

impl KeyHasher for Murmur3 {
    fn with_seed(seed: u64) -> Self {
        Murmur3 {
            seed_lo: seed as u32,
            // Decorrelate the high half with a SplitMix-style mix so that
            // seeds 0 and 1 do not produce related halves.
            seed_hi: ((seed ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0xbf58_476d_1ce4_e5b9) >> 32)
                as u32,
        }
    }

    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let lo = murmur3_x86_32(bytes, self.seed_lo);
        let hi = murmur3_x86_32(bytes, self.seed_hi);
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors for murmur3_x86_32 from the canonical smhasher suite.
    #[test]
    fn reference_vectors_32bit() {
        assert_eq!(murmur3_x86_32(b"", 0), 0);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_x86_32(b"", 0xffff_ffff), 0x81f1_6f39);
        assert_eq!(murmur3_x86_32(b"test", 0), 0xba6b_d213);
        assert_eq!(murmur3_x86_32(b"test", 0x9747_b28c), 0x704b_81dc);
        assert_eq!(murmur3_x86_32(b"Hello, world!", 0), 0xc036_3e43);
        assert_eq!(murmur3_x86_32(b"Hello, world!", 0x9747_b28c), 0x2488_4cba);
        assert_eq!(
            murmur3_x86_32(b"The quick brown fox jumps over the lazy dog", 0x9747_b28c),
            0x2fa8_26cd
        );
    }

    // Every tail length (input length mod 4) exercises a distinct code path;
    // pin all of them with the classic incremental-"a" vectors.
    #[test]
    fn reference_vectors_cover_all_tail_lengths() {
        assert_eq!(murmur3_x86_32(b"a", 0x9747_b28c), 0x7fa0_9ea6);
        assert_eq!(murmur3_x86_32(b"aa", 0x9747_b28c), 0x5d21_1726);
        assert_eq!(murmur3_x86_32(b"aaa", 0x9747_b28c), 0x283e_0130);
        assert_eq!(murmur3_x86_32(b"aaaa", 0x9747_b28c), 0x5a97_808a);
    }

    #[test]
    fn widened_hash_is_deterministic_and_seeded() {
        let a = Murmur3::with_seed(3);
        let b = Murmur3::with_seed(4);
        assert_eq!(a.hash_bytes(b"k"), a.hash_bytes(b"k"));
        assert_ne!(a.hash_bytes(b"k"), b.hash_bytes(b"k"));
    }

    #[test]
    fn halves_are_decorrelated() {
        let h = Murmur3::with_seed(0);
        let v = h.hash_bytes(b"some flow key bytes");
        assert_ne!((v >> 32) as u32, v as u32);
    }
}
