//! A safe software-prefetch wrapper for batched table walks.
//!
//! Batched ingestion computes every slot a batch will touch before it
//! touches any of them, so the slots can be pulled toward L1 while the
//! CPU is still hashing the next keys. On x86_64 this lowers to
//! `_mm_prefetch` with the T0 hint; on other targets it is a no-op, so
//! callers never need a `cfg` of their own.
//!
//! This is the one place in the workspace that uses an `unsafe` intrinsic
//! (prefetching has no architectural side effects — it can neither fault
//! nor alter program state — but the intrinsic is declared `unsafe fn`).
//! The crate-level lint is `deny(unsafe_code)` with a scoped allow here.

/// Hints the CPU to pull `slice[index]` toward L1 for a future read.
///
/// Out-of-range indices are ignored (a prefetch is advisory; the caller's
/// later real access carries the bounds check that matters).
///
/// # Examples
///
/// ```
/// use hashflow_hashing::prefetch_read;
/// let table = vec![0u64; 1024];
/// prefetch_read(&table, 512);
/// prefetch_read(&table, 9999); // out of range: ignored
/// ```
#[inline(always)]
#[allow(unsafe_code)]
pub fn prefetch_read<T>(slice: &[T], index: usize) {
    if let Some(cell) = slice.get(index) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `cell` is a valid reference into `slice`, so the pointer
        // is dereferenceable; PREFETCHT0 itself cannot fault and has no
        // architectural side effects.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                (cell as *const T).cast::<i8>(),
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = cell;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_side_effect_free() {
        let data: Vec<u32> = (0..100).collect();
        for i in 0..200 {
            prefetch_read(&data, i);
        }
        assert_eq!(data[99], 99, "prefetching never mutates");
        let empty: [u8; 0] = [];
        prefetch_read(&empty, 0);
    }
}
