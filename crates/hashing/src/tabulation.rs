use crate::KeyHasher;

/// Zobrist-style tabulation hashing over the 13-byte flow key.
///
/// Tabulation hashing is 3-independent, which is *provably* sufficient for
/// the balls-and-urns behaviour the paper's utilization model assumes, so it
/// serves as the "theoretically clean" member of the hasher set. Each byte
/// position gets a table of 256 random 64-bit words (derived deterministically
/// from the seed with SplitMix64) and the hash is the XOR of the selected
/// words.
///
/// # Examples
///
/// ```
/// use hashflow_hashing::{KeyHasher, TabulationHash};
/// let h = TabulationHash::with_seed(11);
/// assert_eq!(h.hash_bytes(&[1, 2, 3]), h.hash_bytes(&[1, 2, 3]));
/// assert_ne!(h.hash_bytes(&[1, 2, 3]), h.hash_bytes(&[1, 2, 4]));
/// ```
#[derive(Clone)]
pub struct TabulationHash {
    // One 256-entry table per byte position, covering keys up to 16 bytes;
    // longer inputs wrap around with a position-dependent rotation so the
    // hasher still accepts arbitrary slices.
    tables: Box<[[u64; 256]; 16]>,
    seed: u64,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHash")
            .field("seed", &self.seed)
            .finish()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl KeyHasher for TabulationHash {
    fn with_seed(seed: u64) -> Self {
        let mut state = seed ^ 0x5151_5151_5151_5151;
        let mut tables = Box::new([[0u64; 256]; 16]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = splitmix64(&mut state);
            }
        }
        TabulationHash { tables, seed }
    }

    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let mut h = self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for (i, &b) in bytes.iter().enumerate() {
            let word = self.tables[i % 16][b as usize];
            // Rotate wrapped positions so byte 0 and byte 16 of a long input
            // do not cancel each other out.
            h ^= word.rotate_left(((i / 16) % 64) as u32);
        }
        // Mix in the length so prefixes of zero bytes still distinguish keys.
        h ^ (bytes.len() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TabulationHash::with_seed(1);
        let b = TabulationHash::with_seed(1);
        assert_eq!(a.hash_bytes(b"packet"), b.hash_bytes(b"packet"));
    }

    #[test]
    fn seeds_decorrelate() {
        let a = TabulationHash::with_seed(1);
        let b = TabulationHash::with_seed(2);
        assert_ne!(a.hash_bytes(b"packet"), b.hash_bytes(b"packet"));
    }

    #[test]
    fn length_is_mixed_in() {
        let h = TabulationHash::with_seed(0);
        assert_ne!(h.hash_bytes(&[0, 0]), h.hash_bytes(&[0, 0, 0]));
    }

    #[test]
    fn long_inputs_do_not_cancel() {
        let h = TabulationHash::with_seed(3);
        let mut long_a = vec![0u8; 32];
        let mut long_b = vec![0u8; 32];
        long_a[0] = 7;
        long_b[16] = 7;
        assert_ne!(h.hash_bytes(&long_a), h.hash_bytes(&long_b));
    }

    #[test]
    fn single_byte_flip_avalanches() {
        let h = TabulationHash::with_seed(9);
        let base = h.hash_bytes(&[5; 13]);
        let mut flipped = [5u8; 13];
        flipped[6] = 6;
        let diff = (base ^ h.hash_bytes(&flipped)).count_ones();
        assert!(diff >= 8, "flip changed only {diff} bits");
    }
}
