//! One-pass multi-lane hashing for batched ingestion.
//!
//! The scalar hot path hashes a key lazily, one family member at a time,
//! re-serializing the 13-byte key for every member. The batched hot path
//! instead evaluates *all* the hash lanes a packet will need — the `d`
//! main-table members plus the ancillary member — in one pass per key:
//! the key is serialized once and the member chains are independent, so
//! the compiler can overlap them. The values are bit-for-bit identical to
//! the scalar members (`HashFamily::hash`); only the evaluation schedule
//! changes.

use crate::{HashFamily, KeyHasher};
use hashflow_types::FlowKey;

/// A row-major slab of per-key hash values: row `i` holds every lane of
/// key `i`, in the family order they were computed with.
///
/// The buffer is designed to be reused across batches: [`compute_lanes`]
/// clears and refills it, keeping the allocation.
///
/// # Examples
///
/// ```
/// use hashflow_hashing::{compute_lanes, HashFamily, HashLanes, XxHash64};
/// use hashflow_types::FlowKey;
///
/// let main = HashFamily::<XxHash64>::new(3, 1);
/// let anc = HashFamily::<XxHash64>::new(1, 2);
/// let keys = [FlowKey::from_index(1), FlowKey::from_index(2)];
/// let mut lanes = HashLanes::default();
/// compute_lanes(&[&main, &anc], keys.iter().copied(), &mut lanes);
/// assert_eq!(lanes.stride(), 4);
/// assert_eq!(lanes.rows(), 2);
/// assert_eq!(lanes.row(0)[0], main.hash(0, &keys[0]));
/// assert_eq!(lanes.row(1)[3], anc.hash(0, &keys[1]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HashLanes {
    stride: usize,
    values: Vec<u64>,
}

impl HashLanes {
    /// Lanes per key (the summed member counts of the families the slab
    /// was last filled with).
    pub const fn stride(&self) -> usize {
        self.stride
    }

    /// Number of keys currently held.
    pub fn rows(&self) -> usize {
        self.values.len().checked_div(self.stride).unwrap_or(0)
    }

    /// The hash lanes of key `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.values[i * self.stride..(i + 1) * self.stride]
    }
}

/// Fills `lanes` with every member of every family in `families`, for
/// every key of `keys`, serializing each key exactly once.
///
/// Row layout: the members of `families[0]` first, then `families[1]`,
/// and so on — e.g. `[&main, &ancillary]` yields rows of
/// `[h_1 .. h_d, g_1]`. Values are bit-for-bit identical to calling
/// [`HashFamily::hash`] member by member.
pub fn compute_lanes<H: KeyHasher>(
    families: &[&HashFamily<H>],
    keys: impl Iterator<Item = FlowKey>,
    lanes: &mut HashLanes,
) {
    let stride: usize = families.iter().map(|f| f.len()).sum();
    lanes.stride = stride;
    lanes.values.clear();
    let (low, high) = keys.size_hint();
    lanes.values.reserve(high.unwrap_or(low) * stride);
    for key in keys {
        let bytes = key.to_bytes();
        for family in families {
            for member in 0..family.len() {
                lanes.values.push(family.hash_bytes(member, &bytes));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XxHash64;

    #[test]
    fn lanes_are_bit_identical_to_scalar_members() {
        let main = HashFamily::<XxHash64>::new(3, 0xfeed);
        let anc = HashFamily::<XxHash64>::new(1, 0xbead);
        let keys: Vec<FlowKey> = (0..100).map(FlowKey::from_index).collect();
        let mut lanes = HashLanes::default();
        compute_lanes(&[&main, &anc], keys.iter().copied(), &mut lanes);
        assert_eq!(lanes.stride(), 4);
        assert_eq!(lanes.rows(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            let row = lanes.row(i);
            for (m, lane) in row[..3].iter().enumerate() {
                assert_eq!(*lane, main.hash(m, key), "main lane {m} of key {i}");
            }
            assert_eq!(row[3], anc.hash(0, key), "ancillary lane of key {i}");
        }
    }

    #[test]
    fn refill_reuses_and_resizes() {
        let fam = HashFamily::<XxHash64>::new(2, 9);
        let mut lanes = HashLanes::default();
        compute_lanes(&[&fam], (0..10).map(FlowKey::from_index), &mut lanes);
        assert_eq!(lanes.rows(), 10);
        compute_lanes(&[&fam], (0..3).map(FlowKey::from_index), &mut lanes);
        assert_eq!(lanes.rows(), 3);
        assert_eq!(lanes.row(2)[0], fam.hash(0, &FlowKey::from_index(2)));
    }

    #[test]
    fn empty_slab_has_no_rows() {
        let lanes = HashLanes::default();
        assert_eq!(lanes.rows(), 0);
        assert_eq!(lanes.stride(), 0);
    }
}
