//! The built-in application library: the paper's four fixed reports
//! (§IV) generalized into plan-shaped detections, plus the cross-epoch
//! state some of them need.
//!
//! Each [`TelemetryApp`] owns one per-epoch [`QueryPlan`] and a fold over
//! the sequence of epoch answers. Run the plan however the deployment
//! prefers — incrementally via a [`crate::QueryMonitor`], or post hoc via
//! [`crate::execute_snapshot`] over sealed epochs — and feed every
//! epoch's [`QueryResult`] to [`TelemetryApp::observe`] in order; the two
//! paths produce identical verdicts whenever the per-epoch answers agree
//! (which `tests/query_equivalence.rs` pins for exact-mode monitors).
//!
//! | Application | Plan | Cross-epoch state |
//! |---|---|---|
//! | Superspreader | `map src \| distinct dst \| reduce count \| threshold F` | none |
//! | DDoS victim | `map dst \| distinct src \| reduce count \| threshold S` | none |
//! | Port scan | `map src \| distinct dstport \| reduce count \| threshold P` | none |
//! | Heavy changer | `map flow \| reduce sum` | previous epoch's counts |
//! | Size entropy | `map flow \| reduce sum` | none (scalar per epoch) |

use crate::exec::{QueryResult, QueryRow};
use crate::plan::{Aggregate, Projection, QueryPlan};
use std::collections::HashMap;
use std::fmt;

/// The five built-in applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Sources contacting at least `threshold` distinct destinations.
    Superspreader,
    /// Destinations contacted by at least `threshold` distinct sources.
    DdosVictim,
    /// Sources probing at least `threshold` distinct destination ports.
    PortScan,
    /// Flows whose packet count changed by at least `threshold` between
    /// consecutive sealed epochs.
    HeavyChanger,
    /// Shannon entropy (bits) of the epoch's flow-size distribution.
    Entropy,
}

impl AppKind {
    /// Every built-in application.
    pub const ALL: [AppKind; 5] = [
        AppKind::Superspreader,
        AppKind::DdosVictim,
        AppKind::PortScan,
        AppKind::HeavyChanger,
        AppKind::Entropy,
    ];

    /// Canonical lower-case name.
    pub const fn name(&self) -> &'static str {
        match self {
            AppKind::Superspreader => "superspreader",
            AppKind::DdosVictim => "ddos-victim",
            AppKind::PortScan => "port-scan",
            AppKind::HeavyChanger => "heavy-changer",
            AppKind::Entropy => "entropy",
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One epoch's verdict from a [`TelemetryApp`].
#[derive(Debug, Clone, PartialEq)]
pub struct AppVerdict {
    /// Which application produced the verdict.
    pub kind: AppKind,
    /// Zero-based index of the epoch observed (observation order).
    pub epoch: u64,
    /// Offending groups (sources, victims, changed flows), largest value
    /// first, ties by key — empty for [`AppKind::Entropy`] and for the
    /// heavy changer's first epoch (no predecessor to diff against).
    pub offenders: Vec<QueryRow>,
    /// Scalar result ([`AppKind::Entropy`] only): entropy in bits.
    pub scalar: Option<f64>,
}

/// A built-in application instance: a plan plus the cross-epoch fold.
///
/// # Examples
///
/// ```
/// use hashflow_query::{execute, TelemetryApp};
/// use hashflow_types::{FlowKey, FlowRecord};
///
/// let mut app = TelemetryApp::superspreader(3);
/// let records: Vec<FlowRecord> = (0..4)
///     .map(|d| FlowRecord::new(FlowKey::new([1, 1, 1, 1].into(), d.into(), 9, 80, 6), 1))
///     .collect();
/// let verdict = app.observe(&execute(app.plan(), &records));
/// assert_eq!(verdict.offenders.len(), 1); // 1.1.1.1 fanned out to 4 dsts
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryApp {
    kind: AppKind,
    threshold: u64,
    plan: QueryPlan,
    /// Heavy changer only: the previous epoch's per-flow counts.
    previous: Option<HashMap<hashflow_types::FlowKey, u64>>,
    epochs_observed: u64,
}

impl TelemetryApp {
    fn new(kind: AppKind, threshold: u64, plan: QueryPlan) -> Self {
        TelemetryApp {
            kind,
            threshold,
            plan,
            previous: None,
            epochs_observed: 0,
        }
    }

    /// Superspreader detection: sources contacting at least `fanout`
    /// distinct destinations in an epoch.
    pub fn superspreader(fanout: u64) -> Self {
        let plan = QueryPlan::builder()
            .map(Projection::Src)
            .distinct(Projection::Dst)
            .reduce(Aggregate::Count)
            .threshold(fanout)
            .build()
            .expect("static plan is well-formed");
        Self::new(AppKind::Superspreader, fanout, plan)
    }

    /// DDoS victim detection: destinations contacted by at least
    /// `sources` distinct sources in an epoch.
    pub fn ddos_victim(sources: u64) -> Self {
        let plan = QueryPlan::builder()
            .map(Projection::Dst)
            .distinct(Projection::Src)
            .reduce(Aggregate::Count)
            .threshold(sources)
            .build()
            .expect("static plan is well-formed");
        Self::new(AppKind::DdosVictim, sources, plan)
    }

    /// Port-scan detection: sources probing at least `ports` distinct
    /// destination ports in an epoch.
    pub fn port_scan(ports: u64) -> Self {
        let plan = QueryPlan::builder()
            .map(Projection::Src)
            .distinct(Projection::DstPort)
            .reduce(Aggregate::Count)
            .threshold(ports)
            .build()
            .expect("static plan is well-formed");
        Self::new(AppKind::PortScan, ports, plan)
    }

    /// Heavy-changer detection: flows whose packet count moved by at
    /// least `delta` between consecutive sealed epochs (appearing and
    /// disappearing both count as change, from/to zero).
    pub fn heavy_changer(delta: u64) -> Self {
        let plan = QueryPlan::builder()
            .map(Projection::Flow)
            .reduce(Aggregate::Sum)
            .build()
            .expect("static plan is well-formed");
        TelemetryApp {
            previous: Some(HashMap::new()),
            ..Self::new(AppKind::HeavyChanger, delta, plan)
        }
    }

    /// Flow-size entropy: the Shannon entropy (bits) of the epoch's
    /// packet distribution over flows — the standard traffic-anomaly
    /// summary (sudden concentration or dispersion moves it sharply).
    pub fn entropy() -> Self {
        let plan = QueryPlan::builder()
            .map(Projection::Flow)
            .reduce(Aggregate::Sum)
            .build()
            .expect("static plan is well-formed");
        Self::new(AppKind::Entropy, 0, plan)
    }

    /// The full library at the given detection thresholds, in
    /// [`AppKind::ALL`] order.
    pub fn standard_suite(fanout: u64, sources: u64, ports: u64, delta: u64) -> Vec<TelemetryApp> {
        vec![
            Self::superspreader(fanout),
            Self::ddos_victim(sources),
            Self::port_scan(ports),
            Self::heavy_changer(delta),
            Self::entropy(),
        ]
    }

    /// Which application this is.
    pub const fn kind(&self) -> AppKind {
        self.kind
    }

    /// The detection threshold (0 for entropy).
    pub const fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The per-epoch plan to execute (streaming or post hoc).
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Folds one epoch's plan answer into the application, producing the
    /// epoch's verdict. Epoch answers must arrive in epoch order.
    pub fn observe(&mut self, result: &QueryResult) -> AppVerdict {
        let epoch = self.epochs_observed;
        self.epochs_observed += 1;
        let mut verdict = AppVerdict {
            kind: self.kind,
            epoch,
            offenders: Vec::new(),
            scalar: None,
        };
        match self.kind {
            // The plan already thresholded; its rows are the offenders.
            AppKind::Superspreader | AppKind::DdosVictim | AppKind::PortScan => {
                verdict.offenders = result.rows().to_vec();
            }
            AppKind::HeavyChanger => {
                let previous = self
                    .previous
                    .as_mut()
                    .expect("heavy changer always keeps previous-epoch state");
                let current: HashMap<_, _> =
                    result.rows().iter().map(|r| (r.key, r.value)).collect();
                if epoch > 0 {
                    let mut offenders: Vec<QueryRow> = current
                        .iter()
                        .map(|(k, v)| (*k, *v, previous.get(k).copied().unwrap_or(0)))
                        .chain(previous.iter().filter_map(|(k, v)| {
                            // Flows that vanished this epoch.
                            (!current.contains_key(k)).then_some((*k, 0, *v))
                        }))
                        .filter_map(|(key, now, before)| {
                            let change = now.abs_diff(before);
                            (change >= self.threshold).then_some(QueryRow { key, value: change })
                        })
                        .collect();
                    offenders
                        .sort_unstable_by(|a, b| b.value.cmp(&a.value).then(a.key.cmp(&b.key)));
                    verdict.offenders = offenders;
                }
                *previous = current;
            }
            AppKind::Entropy => {
                verdict.scalar = Some(shannon_entropy_bits(result));
            }
        }
        verdict
    }

    /// Forgets all cross-epoch state (a fresh collection run).
    pub fn reset(&mut self) {
        if let Some(previous) = &mut self.previous {
            previous.clear();
        }
        self.epochs_observed = 0;
    }
}

/// Shannon entropy (bits) of the value distribution of a plan answer:
/// `H = -Σ (vᵢ/N) log2 (vᵢ/N)`. Empty answers (and all-zero ones) have
/// zero entropy by convention.
pub fn shannon_entropy_bits(result: &QueryResult) -> f64 {
    let total: u64 = result.rows().iter().map(|r| r.value).sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    result
        .rows()
        .iter()
        .filter(|r| r.value > 0)
        .map(|r| {
            let p = r.value as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use hashflow_types::{FlowKey, FlowRecord};

    fn rec(src: u8, dst: u8, dport: u16, count: u32) -> FlowRecord {
        FlowRecord::new(
            FlowKey::new([10, 0, 0, src].into(), [10, 9, 9, dst].into(), 5, dport, 6),
            count,
        )
    }

    fn run(app: &mut TelemetryApp, records: &[FlowRecord]) -> AppVerdict {
        app.observe(&execute(app.plan(), records))
    }

    #[test]
    fn superspreader_flags_fanout_sources() {
        let mut app = TelemetryApp::superspreader(3);
        let records = [
            rec(1, 1, 80, 9),
            rec(1, 2, 80, 1),
            rec(1, 3, 80, 1),
            rec(2, 1, 80, 50),
        ];
        let verdict = run(&mut app, &records);
        assert_eq!(verdict.kind, AppKind::Superspreader);
        assert_eq!(verdict.offenders.len(), 1);
        assert_eq!(verdict.offenders[0].value, 3);
        assert_eq!(verdict.scalar, None);
    }

    #[test]
    fn ddos_victim_counts_distinct_sources() {
        let mut app = TelemetryApp::ddos_victim(2);
        let records = [rec(1, 7, 80, 1), rec(2, 7, 443, 1), rec(3, 8, 80, 1)];
        let verdict = run(&mut app, &records);
        assert_eq!(verdict.offenders.len(), 1);
        assert_eq!(
            verdict.offenders[0].key,
            Projection::Dst.project(&rec(1, 7, 80, 1).key())
        );
    }

    #[test]
    fn port_scan_counts_distinct_ports() {
        let mut app = TelemetryApp::port_scan(3);
        // One dst, many ports, single packets each: a vertical scan.
        let records: Vec<FlowRecord> = (1..=5).map(|p| rec(4, 1, p, 1)).collect();
        let verdict = run(&mut app, &records);
        assert_eq!(verdict.offenders.len(), 1);
        assert_eq!(verdict.offenders[0].value, 5);
    }

    #[test]
    fn heavy_changer_diffs_consecutive_epochs() {
        let mut app = TelemetryApp::heavy_changer(10);
        // Epoch 0: baseline; no predecessor, so no offenders.
        let v0 = run(&mut app, &[rec(1, 1, 80, 100), rec(2, 2, 80, 5)]);
        assert!(v0.offenders.is_empty());
        // Epoch 1: flow 1 grows by 50, flow 2 vanishes (|Δ| = 5 < 10),
        // flow 3 appears with 12.
        let v1 = run(&mut app, &[rec(1, 1, 80, 150), rec(3, 3, 80, 12)]);
        let deltas: Vec<u64> = v1.offenders.iter().map(|o| o.value).collect();
        assert_eq!(deltas, vec![50, 12]);
        // Epoch 2: flow 1 drops back: change 50 again; flow 3 vanishes.
        let v2 = run(&mut app, &[rec(1, 1, 80, 100)]);
        assert_eq!(v2.offenders.len(), 2);
        assert_eq!(v2.epoch, 2);
    }

    #[test]
    fn entropy_matches_closed_forms() {
        let mut app = TelemetryApp::entropy();
        // Uniform over 4 flows: H = 2 bits.
        let uniform: Vec<FlowRecord> = (1..=4).map(|i| rec(i, i, 80, 8)).collect();
        let v = run(&mut app, &uniform);
        assert!((v.scalar.unwrap() - 2.0).abs() < 1e-12);
        // One flow: H = 0.
        let v = run(&mut app, &[rec(1, 1, 80, 64)]);
        assert_eq!(v.scalar, Some(0.0));
        // Empty epoch: 0 by convention.
        let v = run(&mut app, &[]);
        assert_eq!(v.scalar, Some(0.0));
    }

    #[test]
    fn reset_forgets_cross_epoch_state() {
        let mut app = TelemetryApp::heavy_changer(1);
        run(&mut app, &[rec(1, 1, 80, 5)]);
        app.reset();
        let v = run(&mut app, &[rec(1, 1, 80, 50)]);
        assert_eq!(v.epoch, 0);
        assert!(v.offenders.is_empty(), "epoch 0 never flags");
    }

    #[test]
    fn standard_suite_covers_all_kinds() {
        let suite = TelemetryApp::standard_suite(40, 40, 30, 100);
        let kinds: Vec<AppKind> = suite.iter().map(TelemetryApp::kind).collect();
        assert_eq!(kinds, AppKind::ALL);
        for app in &suite {
            // Every app's plan parses back from its own text form.
            let text = app.plan().to_string();
            assert_eq!(&text.parse::<QueryPlan>().unwrap(), app.plan(), "{text}");
        }
    }
}
