//! The [`QueryMonitor`] adapter: query plans riding the ingestion paths.
//!
//! `QueryMonitor<M>` wraps any [`FlowMonitor`] and implements
//! [`FlowMonitor`] itself, tee-ing every ingested packet into the
//! attached plans' [`StreamingQuery`] state while forwarding to the inner
//! monitor unchanged. Because it *is* a monitor, plans automatically ride
//! every existing ingestion path: the scalar `process_packet` loop, the
//! batched `process_batch` hot path, a `ShardedMonitor` wrapped inside,
//! and the `Collector`/`EpochRotator` pipeline outside (both drive the
//! adapter through the trait).
//!
//! Epoch semantics: plans are epoch-scoped like the tables themselves.
//! [`FlowMonitor::seal`] (and therefore every rotation layer) banks the
//! streaming answers of the closing epoch — retrievable via
//! [`QueryMonitor::sealed_answers`]/[`QueryMonitor::drain_sealed_answers`]
//! — and restarts the state alongside the fresh tables.

use crate::exec::{QueryResult, StreamingQuery};
use crate::plan::QueryPlan;
use hashflow_monitor::{CostSnapshot, DropStats, EpochSnapshot, FlowMonitor};
use hashflow_obs::{Counter, MetricsRegistry};
use hashflow_types::{FlowKey, FlowRecord, Packet};

/// Identifier of a plan attached to a [`QueryMonitor`] (its attach
/// order), used to address [`QueryMonitor::answer`].
pub type QueryId = usize;

/// A [`FlowMonitor`] wrapper evaluating attached query plans
/// incrementally against the live stream.
///
/// # Examples
///
/// ```
/// use hashflow_monitor::FlowMonitor;
/// use hashflow_query::{QueryMonitor, QueryPlan};
/// use hashflow_types::{FlowKey, Packet};
///
/// # use hashflow_monitor::CostSnapshot;
/// # #[derive(Default)]
/// # struct Null;
/// # impl FlowMonitor for Null {
/// #     fn process_packet(&mut self, _: &Packet) {}
/// #     fn flow_records(&self) -> Vec<hashflow_types::FlowRecord> { Vec::new() }
/// #     fn estimate_size(&self, _: &FlowKey) -> u32 { 0 }
/// #     fn estimate_cardinality(&self) -> f64 { 0.0 }
/// #     fn memory_bits(&self) -> usize { 0 }
/// #     fn name(&self) -> &'static str { "Null" }
/// #     fn cost(&self) -> CostSnapshot { CostSnapshot::default() }
/// #     fn reset(&mut self) {}
/// # }
/// let plan: QueryPlan = "map src | distinct dst | reduce count".parse()?;
/// let mut qm = QueryMonitor::new(Null);
/// let fanout = qm.attach(plan);
/// for dst in 0..5u32 {
///     let key = FlowKey::new([10, 0, 0, 1].into(), dst.into(), 1, 2, 6);
///     qm.process_packet(&Packet::new(key, 0, 64));
/// }
/// assert_eq!(qm.answer(fanout).rows()[0].value, 5);
/// # Ok::<(), hashflow_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct QueryMonitor<M> {
    inner: M,
    queries: Vec<StreamingQuery>,
    /// Packets evaluated per plan, parallel to `queries` — counters so
    /// the same handles can live in a [`MetricsRegistry`].
    eval_packets: Vec<Counter>,
    /// Streaming answers banked at each seal, oldest epoch first; one
    /// entry per attached plan, in attach order.
    sealed: Vec<Vec<QueryResult>>,
    /// Maximum banked epochs (`None` = unbounded).
    answer_limit: Option<usize>,
    /// Whole epochs of answers shed at the answer limit (uniform drop
    /// accounting, `component="query_answers"` when registered).
    drops: DropStats,
    /// Registry plans attached *after* [`Self::set_metrics`] register
    /// into.
    metrics: Option<MetricsRegistry>,
}

impl<M: FlowMonitor> QueryMonitor<M> {
    /// Wraps a monitor with no plans attached (a transparent forwarder
    /// until [`Self::attach`] is called). Banked answers are unbounded;
    /// see [`Self::with_answer_limit`] for long-running pipelines.
    pub fn new(inner: M) -> Self {
        QueryMonitor {
            inner,
            queries: Vec::new(),
            eval_packets: Vec::new(),
            sealed: Vec::new(),
            answer_limit: None,
            drops: DropStats::new(),
            metrics: None,
        }
    }

    /// Like [`Self::new`], but banks the answers of at most `max_epochs`
    /// sealed epochs between drains, so a long-running rotation pipeline
    /// that never (or rarely) calls [`Self::drain_sealed_answers`] cannot
    /// grow the bank without bound.
    ///
    /// Drop policy (mirrors `MemorySink::with_capacity_limit`): once the
    /// bank is full, a sealing epoch's answers are dropped **whole** —
    /// retained epochs stay contiguous from the last drain, and the drop
    /// is counted in [`Self::dropped_answer_epochs`]. Sealing itself
    /// never fails: an operator forgetting to drain must not stall
    /// rotation.
    pub fn with_answer_limit(inner: M, max_epochs: usize) -> Self {
        QueryMonitor {
            answer_limit: Some(max_epochs),
            ..Self::new(inner)
        }
    }

    /// Epochs whose streaming answers were dropped whole because the
    /// bank was at its [`answer limit`](Self::with_answer_limit).
    pub fn dropped_answer_epochs(&self) -> u64 {
        self.drops.dropped_epochs()
    }

    /// Attaches a plan; its streaming state starts empty **now** (packets
    /// ingested earlier in the epoch are not replayed). Returns the id
    /// addressing this plan's answers.
    pub fn attach(&mut self, plan: QueryPlan) -> QueryId {
        self.queries.push(StreamingQuery::new(plan));
        self.eval_packets.push(Counter::new());
        let id = self.queries.len() - 1;
        if let Some(registry) = &self.metrics {
            register_eval_counter(registry, id, &self.eval_packets[id]);
        }
        id
    }

    /// Registers this adapter's telemetry in `registry` and remembers it
    /// so plans attached later register too:
    ///
    /// | Metric | Type | Meaning |
    /// |---|---|---|
    /// | `hashflow_query_eval_packets_total{plan=i}` | counter | packets evaluated against plan `i` |
    /// | `hashflow_dropped_epochs_total{component="query_answers"}` | counter | answer epochs shed at the bank limit |
    /// | `hashflow_dropped_records_total{component="query_answers"}` | counter | per-plan answers inside shed epochs |
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.drops.register(registry, "query_answers");
        for (id, counter) in self.eval_packets.iter().enumerate() {
            register_eval_counter(registry, id, counter);
        }
        self.metrics = Some(registry.clone());
    }

    /// Number of attached plans.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The current-epoch streaming answer of one attached plan.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Self::attach`].
    pub fn answer(&self, id: QueryId) -> QueryResult {
        self.queries[id].answer()
    }

    /// Current-epoch streaming answers of every attached plan, in attach
    /// order.
    pub fn answer_all(&self) -> Vec<QueryResult> {
        self.queries.iter().map(StreamingQuery::answer).collect()
    }

    /// Streaming answers banked by past seals (oldest epoch first; inner
    /// vectors follow attach order).
    pub fn sealed_answers(&self) -> &[Vec<QueryResult>] {
        &self.sealed
    }

    /// Drains the banked per-epoch answers, leaving the running epoch's
    /// state untouched.
    pub fn drain_sealed_answers(&mut self) -> Vec<Vec<QueryResult>> {
        std::mem::take(&mut self.sealed)
    }

    /// The wrapped monitor.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped monitor.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Unwraps the adapter, discarding query state.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

/// Registers one plan's evaluation counter under its attach id.
fn register_eval_counter(registry: &MetricsRegistry, id: QueryId, counter: &Counter) {
    registry.register_counter(
        "hashflow_query_eval_packets_total",
        &[("plan", &id.to_string())],
        counter.clone(),
    );
}

impl<M: FlowMonitor> FlowMonitor for QueryMonitor<M> {
    fn process_packet(&mut self, packet: &Packet) {
        for (q, evals) in self.queries.iter_mut().zip(&self.eval_packets) {
            q.observe(packet);
            evals.inc();
        }
        self.inner.process_packet(packet);
    }

    fn process_batch(&mut self, packets: &[Packet]) {
        for (q, evals) in self.queries.iter_mut().zip(&self.eval_packets) {
            q.observe_batch(packets);
            evals.add(packets.len() as u64);
        }
        // The inner batched hot path (hash lanes, prefetch) is preserved.
        self.inner.process_batch(packets);
    }

    fn flow_records(&self) -> Vec<FlowRecord> {
        self.inner.flow_records()
    }

    fn estimate_size(&self, key: &FlowKey) -> u32 {
        self.inner.estimate_size(key)
    }

    fn estimate_cardinality(&self) -> f64 {
        self.inner.estimate_cardinality()
    }

    fn heavy_hitters(&self, threshold: u32) -> Vec<FlowRecord> {
        self.inner.heavy_hitters(threshold)
    }

    fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cost(&self) -> CostSnapshot {
        self.inner.cost()
    }

    /// Resets the inner monitor, every plan's running state, **and** the
    /// banked per-epoch answers — a reset is a fresh collection run, so
    /// stale banked epochs must not prepend themselves to the next run's
    /// drains. The per-plan evaluation counters and drop accounting
    /// restart too (registered registry views included).
    fn reset(&mut self) {
        self.inner.reset();
        for q in &mut self.queries {
            q.reset();
        }
        for evals in &self.eval_packets {
            evals.reset();
        }
        self.sealed.clear();
        self.drops.reset();
    }

    fn process_trace(&mut self, packets: &[Packet]) {
        for chunk in packets.chunks(hashflow_monitor::INGEST_BATCH) {
            self.process_batch(chunk);
        }
    }

    /// Seals the inner monitor and banks this epoch's streaming answers
    /// (see [`QueryMonitor::sealed_answers`]) before restarting the query
    /// state for the next epoch.
    fn seal(&mut self) -> EpochSnapshot {
        if self.answer_limit.is_none_or(|max| self.sealed.len() < max) {
            self.sealed.push(self.answer_all());
        } else {
            // One whole epoch shed; it carried one answer per plan.
            self.drops.record_drop(self.queries.len() as u64);
        }
        let snapshot = self.inner.seal();
        for q in &mut self.queries {
            q.reset();
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_monitor::CostRecorder;
    use std::collections::HashMap;

    /// Exact reference monitor (mirrors the `hashflow-monitor` doctest).
    #[derive(Default)]
    struct Exact {
        flows: HashMap<FlowKey, u32>,
        cost: CostRecorder,
    }

    impl FlowMonitor for Exact {
        fn process_packet(&mut self, packet: &Packet) {
            self.cost.start_packet();
            *self.flows.entry(packet.key()).or_insert(0) += 1;
        }
        fn flow_records(&self) -> Vec<FlowRecord> {
            self.flows
                .iter()
                .map(|(k, c)| FlowRecord::new(*k, *c))
                .collect()
        }
        fn estimate_size(&self, key: &FlowKey) -> u32 {
            self.flows.get(key).copied().unwrap_or(0)
        }
        fn estimate_cardinality(&self) -> f64 {
            self.flows.len() as f64
        }
        fn memory_bits(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "Exact"
        }
        fn cost(&self) -> CostSnapshot {
            self.cost.snapshot()
        }
        fn reset(&mut self) {
            self.flows.clear();
            self.cost.reset();
        }
    }

    fn pkt(src: u8, dst: u8) -> Packet {
        let key = FlowKey::new([10, 0, 0, src].into(), [10, 0, 0, dst].into(), 1, 2, 6);
        Packet::new(key, 0, 64)
    }

    fn fanout_plan() -> QueryPlan {
        "map src | distinct dst | reduce count".parse().unwrap()
    }

    #[test]
    fn adapter_forwards_the_monitor_surface() {
        let mut qm = QueryMonitor::new(Exact::default());
        assert_eq!(qm.query_count(), 0);
        qm.process_packet(&pkt(1, 1));
        qm.process_batch(&[pkt(1, 2), pkt(1, 2)]);
        qm.process_trace(&[pkt(2, 1)]);
        assert_eq!(qm.name(), "Exact");
        assert_eq!(qm.flow_records().len(), 3);
        assert_eq!(qm.estimate_cardinality(), 3.0);
        assert_eq!(qm.estimate_size(&pkt(1, 2).key()), 2);
        assert_eq!(qm.heavy_hitters(2).len(), 1);
        assert_eq!(qm.cost().packets, 4);
        assert_eq!(qm.memory_bits(), 0);
        assert_eq!(qm.inner().flows.len(), 3);
        let _ = qm.inner_mut();
        assert_eq!(qm.into_inner().flows.len(), 3);
    }

    #[test]
    fn answers_track_all_ingestion_paths() {
        let mut qm = QueryMonitor::new(Exact::default());
        let id = qm.attach(fanout_plan());
        qm.process_packet(&pkt(1, 1));
        qm.process_batch(&[pkt(1, 2), pkt(1, 1)]);
        qm.process_trace(&[pkt(1, 3), pkt(2, 1)]);
        let answer = qm.answer(id);
        // src .1 contacted 3 distinct dsts, src .2 one.
        assert_eq!(answer.rows()[0].value, 3);
        assert_eq!(answer.rows()[1].value, 1);
        assert_eq!(qm.answer_all().len(), 1);
    }

    #[test]
    fn seal_banks_per_epoch_answers_and_restarts() {
        let mut qm = QueryMonitor::new(Exact::default());
        let id = qm.attach(fanout_plan());
        qm.process_batch(&[pkt(1, 1), pkt(1, 2)]);
        let snapshot = qm.seal();
        assert_eq!(snapshot.len(), 2, "inner sealed normally");
        assert!(qm.answer(id).is_empty(), "query state restarted");
        qm.process_packet(&pkt(1, 7));
        qm.seal();
        let banked = qm.drain_sealed_answers();
        assert_eq!(banked.len(), 2);
        assert_eq!(banked[0][0].rows()[0].value, 2);
        assert_eq!(banked[1][0].rows()[0].value, 1);
        assert!(qm.sealed_answers().is_empty());
    }

    #[test]
    fn reset_clears_query_state_too() {
        let mut qm = QueryMonitor::new(Exact::default());
        let id = qm.attach(fanout_plan());
        qm.process_packet(&pkt(1, 1));
        qm.seal();
        qm.process_packet(&pkt(1, 2));
        qm.reset();
        assert!(qm.answer(id).is_empty());
        assert!(qm.flow_records().is_empty());
        assert!(
            qm.sealed_answers().is_empty(),
            "a reset run must not prepend stale banked epochs"
        );
    }

    #[test]
    fn answer_limit_drops_whole_epochs_and_counts_them() {
        let mut qm = QueryMonitor::with_answer_limit(Exact::default(), 2);
        qm.attach(fanout_plan());
        for epoch in 0..4u8 {
            qm.process_packet(&pkt(1, epoch));
            qm.seal();
        }
        assert_eq!(qm.sealed_answers().len(), 2, "oldest epochs retained");
        assert_eq!(qm.dropped_answer_epochs(), 2);
        // Draining frees the bank for subsequent epochs.
        assert_eq!(qm.drain_sealed_answers().len(), 2);
        qm.process_packet(&pkt(1, 9));
        qm.seal();
        assert_eq!(qm.sealed_answers().len(), 1);
        assert_eq!(qm.dropped_answer_epochs(), 2, "no further drops");
    }

    #[test]
    fn metrics_expose_per_plan_evals_and_answer_drops() {
        use hashflow_obs::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let mut qm = QueryMonitor::with_answer_limit(Exact::default(), 1);
        let early = qm.attach(fanout_plan()); // attached before the registry
        qm.process_packet(&pkt(1, 1));
        qm.set_metrics(&registry);
        let late = qm.attach(fanout_plan()); // attached after the registry
        qm.process_batch(&[pkt(1, 2), pkt(1, 3)]);
        qm.seal(); // banked
        qm.seal(); // dropped whole: bank is full
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(
                "hashflow_query_eval_packets_total",
                &[("plan", &early.to_string())]
            ),
            Some(3),
            "pre-registry counts carry over at registration"
        );
        assert_eq!(
            snap.counter(
                "hashflow_query_eval_packets_total",
                &[("plan", &late.to_string())]
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter(
                "hashflow_dropped_epochs_total",
                &[("component", "query_answers")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter(
                "hashflow_dropped_records_total",
                &[("component", "query_answers")]
            ),
            Some(2),
            "the shed epoch carried one answer per attached plan"
        );
        assert_eq!(qm.dropped_answer_epochs(), 1);
        qm.reset();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_sum("hashflow_query_eval_packets_total"),
            0,
            "reset restarts the registered counters too"
        );
    }

    #[test]
    fn attach_starts_counting_from_now() {
        let mut qm = QueryMonitor::new(Exact::default());
        qm.process_packet(&pkt(1, 1));
        let id = qm.attach(fanout_plan());
        qm.process_packet(&pkt(1, 2));
        assert_eq!(qm.answer(id).rows()[0].value, 1, "pre-attach not replayed");
    }
}
