//! The [`QueryMonitor`] adapter: query plans riding the ingestion paths.
//!
//! `QueryMonitor<M>` wraps any [`FlowMonitor`] and implements
//! [`FlowMonitor`] itself, tee-ing every ingested packet into the
//! attached plans' [`StreamingQuery`] state while forwarding to the inner
//! monitor unchanged. Because it *is* a monitor, plans automatically ride
//! every existing ingestion path: the scalar `process_packet` loop, the
//! batched `process_batch` hot path, a `ShardedMonitor` wrapped inside,
//! and the `Collector`/`EpochRotator` pipeline outside (both drive the
//! adapter through the trait).
//!
//! Epoch semantics: plans are epoch-scoped like the tables themselves.
//! [`FlowMonitor::seal`] (and therefore every rotation layer) banks the
//! streaming answers of the closing epoch — retrievable via
//! [`QueryMonitor::sealed_answers`]/[`QueryMonitor::drain_sealed_answers`]
//! — and restarts the state alongside the fresh tables.

use crate::exec::{QueryResult, StreamingQuery};
use crate::plan::QueryPlan;
use hashflow_monitor::{
    BackpressurePolicy, CostSnapshot, DropStats, EpochSnapshot, FlowMonitor, IntrospectMetric,
};
use hashflow_obs::{Counter, MetricsRegistry};
use hashflow_types::{FlowKey, FlowRecord, Packet};

/// Identifier of a plan attached to a [`QueryMonitor`] (its attach
/// order), used to address [`QueryMonitor::answer`].
pub type QueryId = usize;

/// A [`FlowMonitor`] wrapper evaluating attached query plans
/// incrementally against the live stream.
///
/// # Examples
///
/// ```
/// use hashflow_monitor::FlowMonitor;
/// use hashflow_query::{QueryMonitor, QueryPlan};
/// use hashflow_types::{FlowKey, Packet};
///
/// # use hashflow_monitor::CostSnapshot;
/// # #[derive(Default)]
/// # struct Null;
/// # impl FlowMonitor for Null {
/// #     fn process_packet(&mut self, _: &Packet) {}
/// #     fn flow_records(&self) -> Vec<hashflow_types::FlowRecord> { Vec::new() }
/// #     fn estimate_size(&self, _: &FlowKey) -> u32 { 0 }
/// #     fn estimate_cardinality(&self) -> f64 { 0.0 }
/// #     fn memory_bits(&self) -> usize { 0 }
/// #     fn name(&self) -> &'static str { "Null" }
/// #     fn cost(&self) -> CostSnapshot { CostSnapshot::default() }
/// #     fn reset(&mut self) {}
/// # }
/// let plan: QueryPlan = "map src | distinct dst | reduce count".parse()?;
/// let mut qm = QueryMonitor::new(Null);
/// let fanout = qm.attach(plan);
/// for dst in 0..5u32 {
///     let key = FlowKey::new([10, 0, 0, 1].into(), dst.into(), 1, 2, 6);
///     qm.process_packet(&Packet::new(key, 0, 64));
/// }
/// assert_eq!(qm.answer(fanout).rows()[0].value, 5);
/// # Ok::<(), hashflow_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct QueryMonitor<M> {
    inner: M,
    queries: Vec<StreamingQuery>,
    /// Packets evaluated per plan, parallel to `queries` — counters so
    /// the same handles can live in a [`MetricsRegistry`].
    eval_packets: Vec<Counter>,
    /// Streaming answers banked at each seal, oldest epoch first; one
    /// entry per attached plan, in attach order.
    sealed: Vec<Vec<QueryResult>>,
    /// Maximum banked epochs (`None` = unbounded).
    answer_limit: Option<usize>,
    /// What to shed when the bank is full (see
    /// [`Self::with_answer_policy`]).
    answer_policy: BackpressurePolicy,
    /// Whole epochs of answers shed at the answer limit (uniform drop
    /// accounting, `component="query_answers"` when registered).
    drops: DropStats,
    /// Registry plans attached *after* [`Self::set_metrics`] register
    /// into.
    metrics: Option<MetricsRegistry>,
}

impl<M: FlowMonitor> QueryMonitor<M> {
    /// Wraps a monitor with no plans attached (a transparent forwarder
    /// until [`Self::attach`] is called). Banked answers are unbounded;
    /// see [`Self::with_answer_limit`] for long-running pipelines.
    pub fn new(inner: M) -> Self {
        QueryMonitor {
            inner,
            queries: Vec::new(),
            eval_packets: Vec::new(),
            sealed: Vec::new(),
            answer_limit: None,
            answer_policy: BackpressurePolicy::DropNewest,
            drops: DropStats::new(),
            metrics: None,
        }
    }

    /// Like [`Self::new`], but banks the answers of at most `max_epochs`
    /// sealed epochs between drains, so a long-running rotation pipeline
    /// that never (or rarely) calls [`Self::drain_sealed_answers`] cannot
    /// grow the bank without bound.
    ///
    /// Drop policy (mirrors `MemorySink::with_capacity_limit`): once the
    /// bank is full, a sealing epoch's answers are dropped **whole** —
    /// retained epochs stay contiguous from the last drain, and the drop
    /// is counted in [`Self::dropped_answer_epochs`]. Sealing itself
    /// never fails: an operator forgetting to drain must not stall
    /// rotation. Choose a different shed direction with
    /// [`Self::with_answer_policy`].
    pub fn with_answer_limit(inner: M, max_epochs: usize) -> Self {
        Self::with_answer_policy(inner, max_epochs, BackpressurePolicy::DropNewest)
    }

    /// Like [`Self::with_answer_limit`], but with an explicit
    /// [`BackpressurePolicy`] for the full bank:
    /// [`BackpressurePolicy::DropNewest`] keeps the oldest epochs since
    /// the last drain, [`BackpressurePolicy::DropOldest`] slides the
    /// window to the freshest epochs. [`BackpressurePolicy::Block`]
    /// degrades to `DropNewest` (counted): the seal path has no consumer
    /// to wait on, and stalling rotation is never acceptable.
    pub fn with_answer_policy(inner: M, max_epochs: usize, policy: BackpressurePolicy) -> Self {
        QueryMonitor {
            answer_limit: Some(max_epochs),
            answer_policy: policy,
            ..Self::new(inner)
        }
    }

    /// The shed direction of a full answer bank.
    pub fn answer_policy(&self) -> BackpressurePolicy {
        self.answer_policy
    }

    /// Bounds (or re-bounds) the answer bank at runtime — equivalent to
    /// constructing with [`Self::with_answer_policy`]. Already-banked
    /// epochs are kept; an over-full bank sheds at the next seal under
    /// the new policy.
    pub fn set_answer_limit(&mut self, max_epochs: usize, policy: BackpressurePolicy) {
        self.answer_limit = Some(max_epochs);
        self.answer_policy = policy;
    }

    /// Epochs whose streaming answers were dropped whole because the
    /// bank was at its [`answer limit`](Self::with_answer_limit).
    pub fn dropped_answer_epochs(&self) -> u64 {
        self.drops.dropped_epochs()
    }

    /// The full answer-bank ledger (offered/dropped/delivered epochs and
    /// per-plan answers; conservation holds by construction).
    pub fn answer_drop_stats(&self) -> &DropStats {
        &self.drops
    }

    /// Attaches a plan; its streaming state starts empty **now** (packets
    /// ingested earlier in the epoch are not replayed). Returns the id
    /// addressing this plan's answers.
    pub fn attach(&mut self, plan: QueryPlan) -> QueryId {
        self.queries.push(StreamingQuery::new(plan));
        self.eval_packets.push(Counter::new());
        let id = self.queries.len() - 1;
        if let Some(registry) = &self.metrics {
            register_eval_counter(registry, id, &self.eval_packets[id]);
        }
        id
    }

    /// Registers this adapter's telemetry in `registry` and remembers it
    /// so plans attached later register too:
    ///
    /// | Metric | Type | Meaning |
    /// |---|---|---|
    /// | `hashflow_query_eval_packets_total{plan=i}` | counter | packets evaluated against plan `i` |
    /// | `hashflow_dropped_epochs_total{component="query_answers"}` | counter | answer epochs shed at the bank limit |
    /// | `hashflow_dropped_records_total{component="query_answers"}` | counter | per-plan answers inside shed epochs |
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.drops.register(registry, "query_answers");
        for (id, counter) in self.eval_packets.iter().enumerate() {
            register_eval_counter(registry, id, counter);
        }
        self.metrics = Some(registry.clone());
    }

    /// Number of attached plans.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The current-epoch streaming answer of one attached plan.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Self::attach`].
    pub fn answer(&self, id: QueryId) -> QueryResult {
        self.queries[id].answer()
    }

    /// Current-epoch streaming answers of every attached plan, in attach
    /// order.
    pub fn answer_all(&self) -> Vec<QueryResult> {
        self.queries.iter().map(StreamingQuery::answer).collect()
    }

    /// Streaming answers banked by past seals (oldest epoch first; inner
    /// vectors follow attach order).
    pub fn sealed_answers(&self) -> &[Vec<QueryResult>] {
        &self.sealed
    }

    /// Drains the banked per-epoch answers, leaving the running epoch's
    /// state untouched.
    pub fn drain_sealed_answers(&mut self) -> Vec<Vec<QueryResult>> {
        std::mem::take(&mut self.sealed)
    }

    /// The wrapped monitor.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped monitor.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Unwraps the adapter, discarding query state.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

/// Registers one plan's evaluation counter under its attach id.
fn register_eval_counter(registry: &MetricsRegistry, id: QueryId, counter: &Counter) {
    registry.register_counter(
        "hashflow_query_eval_packets_total",
        &[("plan", &id.to_string())],
        counter.clone(),
    );
}

impl<M: FlowMonitor> FlowMonitor for QueryMonitor<M> {
    fn process_packet(&mut self, packet: &Packet) {
        for (q, evals) in self.queries.iter_mut().zip(&self.eval_packets) {
            q.observe(packet);
            evals.inc();
        }
        self.inner.process_packet(packet);
    }

    fn process_batch(&mut self, packets: &[Packet]) {
        for (q, evals) in self.queries.iter_mut().zip(&self.eval_packets) {
            q.observe_batch(packets);
            evals.add(packets.len() as u64);
        }
        // The inner batched hot path (hash lanes, prefetch) is preserved.
        self.inner.process_batch(packets);
    }

    fn flow_records(&self) -> Vec<FlowRecord> {
        self.inner.flow_records()
    }

    fn estimate_size(&self, key: &FlowKey) -> u32 {
        self.inner.estimate_size(key)
    }

    fn estimate_cardinality(&self) -> f64 {
        self.inner.estimate_cardinality()
    }

    fn heavy_hitters(&self, threshold: u32) -> Vec<FlowRecord> {
        self.inner.heavy_hitters(threshold)
    }

    fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cost(&self) -> CostSnapshot {
        self.inner.cost()
    }

    fn faults(&self) -> Vec<String> {
        self.inner.faults()
    }

    fn introspection(&self) -> Vec<IntrospectMetric> {
        self.inner.introspection()
    }

    /// Resets the inner monitor, every plan's running state, **and** the
    /// banked per-epoch answers — a reset is a fresh collection run, so
    /// stale banked epochs must not prepend themselves to the next run's
    /// drains. The per-plan evaluation counters and drop accounting
    /// restart too (registered registry views included).
    fn reset(&mut self) {
        self.inner.reset();
        for q in &mut self.queries {
            q.reset();
        }
        for evals in &self.eval_packets {
            evals.reset();
        }
        self.sealed.clear();
        self.drops.reset();
    }

    fn process_trace(&mut self, packets: &[Packet]) {
        for chunk in packets.chunks(hashflow_monitor::INGEST_BATCH) {
            self.process_batch(chunk);
        }
    }

    /// Seals the inner monitor and banks this epoch's streaming answers
    /// (see [`QueryMonitor::sealed_answers`]) before restarting the query
    /// state for the next epoch.
    fn seal(&mut self) -> EpochSnapshot {
        // One epoch of answers (one per plan) is offered to the bank.
        self.drops.record_offer(self.queries.len() as u64);
        match self.answer_limit {
            Some(max) if self.sealed.len() >= max => match self.answer_policy {
                // No consumer drains this bank synchronously, so Block
                // degrades to DropNewest (counted) rather than stalling
                // the rotation path.
                BackpressurePolicy::Block | BackpressurePolicy::DropNewest => {
                    self.drops.record_drop(self.queries.len() as u64);
                }
                BackpressurePolicy::DropOldest => {
                    while self.sealed.len() >= max.max(1) {
                        let evicted = self.sealed.remove(0);
                        self.drops.record_drop(evicted.len() as u64);
                    }
                    if max == 0 {
                        self.drops.record_drop(self.queries.len() as u64);
                    } else {
                        self.sealed.push(self.answer_all());
                    }
                }
            },
            _ => self.sealed.push(self.answer_all()),
        }
        let snapshot = self.inner.seal();
        for q in &mut self.queries {
            q.reset();
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_monitor::CostRecorder;
    use std::collections::HashMap;

    /// Exact reference monitor (mirrors the `hashflow-monitor` doctest).
    #[derive(Default)]
    struct Exact {
        flows: HashMap<FlowKey, u32>,
        cost: CostRecorder,
    }

    impl FlowMonitor for Exact {
        fn process_packet(&mut self, packet: &Packet) {
            self.cost.start_packet();
            *self.flows.entry(packet.key()).or_insert(0) += 1;
        }
        fn flow_records(&self) -> Vec<FlowRecord> {
            self.flows
                .iter()
                .map(|(k, c)| FlowRecord::new(*k, *c))
                .collect()
        }
        fn estimate_size(&self, key: &FlowKey) -> u32 {
            self.flows.get(key).copied().unwrap_or(0)
        }
        fn estimate_cardinality(&self) -> f64 {
            self.flows.len() as f64
        }
        fn memory_bits(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "Exact"
        }
        fn cost(&self) -> CostSnapshot {
            self.cost.snapshot()
        }
        fn reset(&mut self) {
            self.flows.clear();
            self.cost.reset();
        }
    }

    fn pkt(src: u8, dst: u8) -> Packet {
        let key = FlowKey::new([10, 0, 0, src].into(), [10, 0, 0, dst].into(), 1, 2, 6);
        Packet::new(key, 0, 64)
    }

    fn fanout_plan() -> QueryPlan {
        "map src | distinct dst | reduce count".parse().unwrap()
    }

    #[test]
    fn adapter_forwards_the_monitor_surface() {
        let mut qm = QueryMonitor::new(Exact::default());
        assert_eq!(qm.query_count(), 0);
        qm.process_packet(&pkt(1, 1));
        qm.process_batch(&[pkt(1, 2), pkt(1, 2)]);
        qm.process_trace(&[pkt(2, 1)]);
        assert_eq!(qm.name(), "Exact");
        assert_eq!(qm.flow_records().len(), 3);
        assert_eq!(qm.estimate_cardinality(), 3.0);
        assert_eq!(qm.estimate_size(&pkt(1, 2).key()), 2);
        assert_eq!(qm.heavy_hitters(2).len(), 1);
        assert_eq!(qm.cost().packets, 4);
        assert_eq!(qm.memory_bits(), 0);
        assert_eq!(qm.inner().flows.len(), 3);
        let _ = qm.inner_mut();
        assert_eq!(qm.into_inner().flows.len(), 3);
    }

    #[test]
    fn answers_track_all_ingestion_paths() {
        let mut qm = QueryMonitor::new(Exact::default());
        let id = qm.attach(fanout_plan());
        qm.process_packet(&pkt(1, 1));
        qm.process_batch(&[pkt(1, 2), pkt(1, 1)]);
        qm.process_trace(&[pkt(1, 3), pkt(2, 1)]);
        let answer = qm.answer(id);
        // src .1 contacted 3 distinct dsts, src .2 one.
        assert_eq!(answer.rows()[0].value, 3);
        assert_eq!(answer.rows()[1].value, 1);
        assert_eq!(qm.answer_all().len(), 1);
    }

    #[test]
    fn seal_banks_per_epoch_answers_and_restarts() {
        let mut qm = QueryMonitor::new(Exact::default());
        let id = qm.attach(fanout_plan());
        qm.process_batch(&[pkt(1, 1), pkt(1, 2)]);
        let snapshot = qm.seal();
        assert_eq!(snapshot.len(), 2, "inner sealed normally");
        assert!(qm.answer(id).is_empty(), "query state restarted");
        qm.process_packet(&pkt(1, 7));
        qm.seal();
        let banked = qm.drain_sealed_answers();
        assert_eq!(banked.len(), 2);
        assert_eq!(banked[0][0].rows()[0].value, 2);
        assert_eq!(banked[1][0].rows()[0].value, 1);
        assert!(qm.sealed_answers().is_empty());
    }

    #[test]
    fn reset_clears_query_state_too() {
        let mut qm = QueryMonitor::new(Exact::default());
        let id = qm.attach(fanout_plan());
        qm.process_packet(&pkt(1, 1));
        qm.seal();
        qm.process_packet(&pkt(1, 2));
        qm.reset();
        assert!(qm.answer(id).is_empty());
        assert!(qm.flow_records().is_empty());
        assert!(
            qm.sealed_answers().is_empty(),
            "a reset run must not prepend stale banked epochs"
        );
    }

    #[test]
    fn answer_limit_drops_whole_epochs_and_counts_them() {
        let mut qm = QueryMonitor::with_answer_limit(Exact::default(), 2);
        qm.attach(fanout_plan());
        for epoch in 0..4u8 {
            qm.process_packet(&pkt(1, epoch));
            qm.seal();
        }
        assert_eq!(qm.sealed_answers().len(), 2, "oldest epochs retained");
        assert_eq!(qm.dropped_answer_epochs(), 2);
        // Draining frees the bank for subsequent epochs.
        assert_eq!(qm.drain_sealed_answers().len(), 2);
        qm.process_packet(&pkt(1, 9));
        qm.seal();
        assert_eq!(qm.sealed_answers().len(), 1);
        assert_eq!(qm.dropped_answer_epochs(), 2, "no further drops");
    }

    #[test]
    fn drop_oldest_answer_policy_keeps_the_freshest_epochs() {
        let mut qm =
            QueryMonitor::with_answer_policy(Exact::default(), 2, BackpressurePolicy::DropOldest);
        assert_eq!(qm.answer_policy(), BackpressurePolicy::DropOldest);
        qm.attach(fanout_plan());
        for epoch in 0..4u8 {
            for dst in 0..=epoch {
                qm.process_packet(&pkt(1, dst));
            }
            qm.seal();
        }
        // The window slid: the two freshest epochs (3 and 4 distinct
        // dsts) remain, the oldest were evicted and counted.
        let banked = qm.sealed_answers();
        assert_eq!(banked.len(), 2);
        assert_eq!(banked[0][0].rows()[0].value, 3);
        assert_eq!(banked[1][0].rows()[0].value, 4);
        let drops = qm.answer_drop_stats();
        assert_eq!(drops.offered_epochs(), 4);
        assert_eq!(drops.dropped_epochs(), 2);
        assert_eq!(drops.delivered_epochs(), 2);
    }

    #[test]
    fn metrics_expose_per_plan_evals_and_answer_drops() {
        use hashflow_obs::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let mut qm = QueryMonitor::with_answer_limit(Exact::default(), 1);
        let early = qm.attach(fanout_plan()); // attached before the registry
        qm.process_packet(&pkt(1, 1));
        qm.set_metrics(&registry);
        let late = qm.attach(fanout_plan()); // attached after the registry
        qm.process_batch(&[pkt(1, 2), pkt(1, 3)]);
        qm.seal(); // banked
        qm.seal(); // dropped whole: bank is full
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(
                "hashflow_query_eval_packets_total",
                &[("plan", &early.to_string())]
            ),
            Some(3),
            "pre-registry counts carry over at registration"
        );
        assert_eq!(
            snap.counter(
                "hashflow_query_eval_packets_total",
                &[("plan", &late.to_string())]
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter(
                "hashflow_dropped_epochs_total",
                &[("component", "query_answers")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter(
                "hashflow_dropped_records_total",
                &[("component", "query_answers")]
            ),
            Some(2),
            "the shed epoch carried one answer per attached plan"
        );
        assert_eq!(qm.dropped_answer_epochs(), 1);
        qm.reset();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_sum("hashflow_query_eval_packets_total"),
            0,
            "reset restarts the registered counters too"
        );
    }

    #[test]
    fn attach_starts_counting_from_now() {
        let mut qm = QueryMonitor::new(Exact::default());
        qm.process_packet(&pkt(1, 1));
        let id = qm.attach(fanout_plan());
        qm.process_packet(&pkt(1, 2));
        assert_eq!(qm.answer(id).rows()[0].value, 1, "pre-attach not replayed");
    }
}
