//! The query-plan IR: a Sonata-style linear operator pipeline over flow
//! telemetry, with a typed builder and a validated normal form.
//!
//! A plan is a sequence of stages in the fixed order
//! `filter* → map → distinct? → reduce → threshold?` (the normal form
//! every Sonata-style telemetry query compiles to once joins are taken
//! off the table). [`QueryPlan::new`] enforces the order, so every plan
//! an executor sees is well-formed by construction.

use hashflow_types::{ConfigError, FlowKey, Ipv4Addr};
use std::fmt;

/// A five-tuple component a predicate or projection can address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Source IPv4 address.
    SrcIp,
    /// Destination IPv4 address.
    DstIp,
    /// Source transport port.
    SrcPort,
    /// Destination transport port.
    DstPort,
    /// IP protocol number.
    Protocol,
}

impl Field {
    /// The canonical grammar token (`src`, `dst`, `srcport`, `dstport`,
    /// `proto`).
    pub const fn token(&self) -> &'static str {
        match self {
            Field::SrcIp => "src",
            Field::DstIp => "dst",
            Field::SrcPort => "srcport",
            Field::DstPort => "dstport",
            Field::Protocol => "proto",
        }
    }

    /// Extracts this field of `key` as a plain number (IPs as their
    /// 32-bit value) — the domain every comparison runs in.
    pub fn extract(&self, key: &FlowKey) -> u64 {
        match self {
            Field::SrcIp => u64::from(key.src_ip().to_bits()),
            Field::DstIp => u64::from(key.dst_ip().to_bits()),
            Field::SrcPort => u64::from(key.src_port()),
            Field::DstPort => u64::from(key.dst_port()),
            Field::Protocol => u64::from(key.protocol()),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A comparison operator of the predicate grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The grammar token of the operator.
    pub const fn token(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Applies the comparison.
    pub fn test(&self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One filter condition: a comparison over a key field or over a flow's
/// packet count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Compares a five-tuple field against a constant (IPs by their
    /// numeric value — equality is the meaningful case; ordering enables
    /// crude range checks).
    Key {
        /// Field under test.
        field: Field,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: u64,
    },
    /// Compares a flow's **final epoch packet count**. Count predicates
    /// cannot be decided per packet, so streaming execution keeps exact
    /// per-flow counts and defers the whole evaluation to query time (see
    /// [`crate::StreamingQuery`]).
    Count {
        /// Comparison operator.
        op: CmpOp,
        /// Packet-count constant.
        value: u64,
    },
}

impl Predicate {
    /// `field op value` over a key field.
    pub const fn key(field: Field, op: CmpOp, value: u64) -> Self {
        Predicate::Key { field, op, value }
    }

    /// `proto = p` — the most common packet-level filter.
    pub const fn proto_eq(proto: u8) -> Self {
        Predicate::Key {
            field: Field::Protocol,
            op: CmpOp::Eq,
            value: proto as u64,
        }
    }

    /// `src = addr`.
    pub const fn src_eq(addr: Ipv4Addr) -> Self {
        Predicate::Key {
            field: Field::SrcIp,
            op: CmpOp::Eq,
            value: addr.to_bits() as u64,
        }
    }

    /// `dst = addr`.
    pub const fn dst_eq(addr: Ipv4Addr) -> Self {
        Predicate::Key {
            field: Field::DstIp,
            op: CmpOp::Eq,
            value: addr.to_bits() as u64,
        }
    }

    /// `count op value` over the final epoch packet count.
    pub const fn count(op: CmpOp, value: u64) -> Self {
        Predicate::Count { op, value }
    }

    /// Whether the predicate can be decided from the key alone (i.e. per
    /// packet, without the final count).
    pub const fn is_key_level(&self) -> bool {
        matches!(self, Predicate::Key { .. })
    }

    /// Tests the predicate against a `(key, count)` flow observation.
    pub fn test(&self, key: &FlowKey, count: u64) -> bool {
        match self {
            Predicate::Key { field, op, value } => op.test(field.extract(key), *value),
            Predicate::Count { op, value } => op.test(count, *value),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Key { field, op, value } => match field {
                Field::SrcIp | Field::DstIp => {
                    write!(f, "{field}{op}{}", Ipv4Addr::new(*value as u32))
                }
                _ => write!(f, "{field}{op}{value}"),
            },
            Predicate::Count { op, value } => write!(f, "count{op}{value}"),
        }
    }
}

/// A key projection: which components of the five-tuple survive into the
/// grouping key (or the distinct sub-key).
///
/// A projected key is represented as a [`FlowKey`] with every
/// non-projected field zeroed, so group keys reuse the workspace's key
/// type, hashing and ordering unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Projection {
    /// The whole five-tuple (identity projection).
    #[default]
    Flow,
    /// Source address only.
    Src,
    /// Destination address only.
    Dst,
    /// Source and destination addresses (the host pair).
    SrcDst,
    /// Source port only.
    SrcPort,
    /// Destination port only.
    DstPort,
    /// Protocol number only.
    Proto,
}

impl Projection {
    /// Every projection, in grammar order.
    pub const ALL: [Projection; 7] = [
        Projection::Flow,
        Projection::Src,
        Projection::Dst,
        Projection::SrcDst,
        Projection::SrcPort,
        Projection::DstPort,
        Projection::Proto,
    ];

    /// The canonical grammar token.
    pub const fn token(&self) -> &'static str {
        match self {
            Projection::Flow => "flow",
            Projection::Src => "src",
            Projection::Dst => "dst",
            Projection::SrcDst => "srcdst",
            Projection::SrcPort => "srcport",
            Projection::DstPort => "dstport",
            Projection::Proto => "proto",
        }
    }

    /// Projects `key`, zeroing every non-projected field.
    pub fn project(&self, key: &FlowKey) -> FlowKey {
        let zero = Ipv4Addr::new(0);
        match self {
            Projection::Flow => *key,
            Projection::Src => FlowKey::new(key.src_ip(), zero, 0, 0, 0),
            Projection::Dst => FlowKey::new(zero, key.dst_ip(), 0, 0, 0),
            Projection::SrcDst => FlowKey::new(key.src_ip(), key.dst_ip(), 0, 0, 0),
            Projection::SrcPort => FlowKey::new(zero, zero, key.src_port(), 0, 0),
            Projection::DstPort => FlowKey::new(zero, zero, 0, key.dst_port(), 0),
            Projection::Proto => FlowKey::new(zero, zero, 0, 0, key.protocol()),
        }
    }

    /// Formats a *projected* key showing only the projected components
    /// (`10.0.0.1`, `10.0.0.1->10.0.0.2`, `:443`, …) — report-friendly,
    /// unlike printing the zero-padded full tuple.
    pub fn format(&self, key: &FlowKey) -> String {
        match self {
            Projection::Flow => key.to_string(),
            Projection::Src => key.src_ip().to_string(),
            Projection::Dst => key.dst_ip().to_string(),
            Projection::SrcDst => format!("{}->{}", key.src_ip(), key.dst_ip()),
            Projection::SrcPort => format!(":{}", key.src_port()),
            Projection::DstPort => format!(":{}", key.dst_port()),
            Projection::Proto => format!("/{}", key.protocol()),
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// The aggregation function of the `reduce` stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Sum of packet counts per group (total packets).
    Sum,
    /// Number of distinct items per group: distinct flows without a
    /// `distinct` stage, distinct projected sub-keys with one.
    Count,
    /// Largest single flow count in the group.
    Max,
}

impl Aggregate {
    /// The canonical grammar token.
    pub const fn token(&self) -> &'static str {
        match self {
            Aggregate::Sum => "sum",
            Aggregate::Count => "count",
            Aggregate::Max => "max",
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One pipeline stage of a query plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanOp {
    /// Drop flows failing the predicate.
    Filter(Predicate),
    /// Project the grouping key.
    MapKey(Projection),
    /// Deduplicate `(group, projected sub-key)` pairs before reducing:
    /// `distinct src` after `map dst` counts, per destination, each
    /// source once — the superspreader/DDoS shape.
    Distinct(Projection),
    /// Aggregate per group.
    Reduce(Aggregate),
    /// Keep groups whose aggregate is at least the bound.
    Threshold(u64),
}

impl fmt::Display for PlanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOp::Filter(p) => write!(f, "filter {p}"),
            PlanOp::MapKey(p) => write!(f, "map {p}"),
            PlanOp::Distinct(p) => write!(f, "distinct {p}"),
            PlanOp::Reduce(a) => write!(f, "reduce {a}"),
            PlanOp::Threshold(t) => write!(f, "threshold {t}"),
        }
    }
}

/// A validated query plan in normal form:
/// `filter* → map → distinct? → reduce → threshold?`.
///
/// Build one with [`QueryPlan::builder`], [`QueryPlan::new`] on raw ops,
/// or parse the compact text form (`"filter proto=6 | map dst | distinct
/// src | reduce count | threshold 40"`) via [`FromStr`](std::str::FromStr).
///
/// # Examples
///
/// ```
/// use hashflow_query::{Aggregate, Predicate, Projection, QueryPlan};
///
/// // Superspreader: sources contacting >= 40 distinct destinations.
/// let plan = QueryPlan::builder()
///     .filter(Predicate::proto_eq(6))
///     .map(Projection::Src)
///     .distinct(Projection::Dst)
///     .reduce(Aggregate::Count)
///     .threshold(40)
///     .build()?;
/// let parsed: QueryPlan = plan.to_string().parse()?;
/// assert_eq!(parsed, plan);
/// # Ok::<(), hashflow_query::hashflow_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    ops: Vec<PlanOp>,
}

impl QueryPlan {
    /// Validates a raw stage sequence into a plan.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when stages are out of normal-form order,
    /// a stage is duplicated, or the mandatory `reduce` stage is missing.
    pub fn new(ops: Vec<PlanOp>) -> Result<Self, ConfigError> {
        // Stage ranks of the normal form; each op must rank strictly
        // after filters and non-strictly after everything it follows.
        fn rank(op: &PlanOp) -> u8 {
            match op {
                PlanOp::Filter(_) => 0,
                PlanOp::MapKey(_) => 1,
                PlanOp::Distinct(_) => 2,
                PlanOp::Reduce(_) => 3,
                PlanOp::Threshold(_) => 4,
            }
        }
        let mut last_rank = 0u8;
        for op in &ops {
            let r = rank(op);
            if r < last_rank || (r == last_rank && r != 0) {
                return Err(ConfigError::new(format!(
                    "plan stage '{op}' out of order; the normal form is \
                     filter* | map | distinct | reduce | threshold"
                )));
            }
            last_rank = r;
        }
        if !ops.iter().any(|op| matches!(op, PlanOp::Reduce(_))) {
            return Err(ConfigError::new(
                "a query plan needs a 'reduce sum|count|max' stage",
            ));
        }
        Ok(QueryPlan { ops })
    }

    /// Starts a typed builder.
    pub fn builder() -> PlanBuilder {
        PlanBuilder { ops: Vec::new() }
    }

    /// The validated stage sequence.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Filter predicates, in plan order.
    pub fn filters(&self) -> impl Iterator<Item = &Predicate> {
        self.ops.iter().filter_map(|op| match op {
            PlanOp::Filter(p) => Some(p),
            _ => None,
        })
    }

    /// The grouping projection ([`Projection::Flow`] when no `map` stage).
    pub fn group(&self) -> Projection {
        self.ops
            .iter()
            .find_map(|op| match op {
                PlanOp::MapKey(p) => Some(*p),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// The distinct sub-key projection, if the plan deduplicates.
    pub fn distinct(&self) -> Option<Projection> {
        self.ops.iter().find_map(|op| match op {
            PlanOp::Distinct(p) => Some(*p),
            _ => None,
        })
    }

    /// The aggregation function (validation guarantees its presence).
    pub fn aggregate(&self) -> Aggregate {
        self.ops
            .iter()
            .find_map(|op| match op {
                PlanOp::Reduce(a) => Some(*a),
                _ => None,
            })
            .expect("validated plans always carry a reduce stage")
    }

    /// The threshold bound, if any.
    pub fn threshold(&self) -> Option<u64> {
        self.ops.iter().find_map(|op| match op {
            PlanOp::Threshold(t) => Some(*t),
            _ => None,
        })
    }

    /// Whether any filter needs final flow counts — the condition that
    /// forces streaming execution into deferred (per-flow-count) mode.
    pub fn has_count_filter(&self) -> bool {
        self.filters().any(|p| !p.is_key_level())
    }
}

impl fmt::Display for QueryPlan {
    /// Renders the compact text form; parses back to an equal plan.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// Typed builder for [`QueryPlan`]; stages may be given in any order and
/// are validated by [`PlanBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct PlanBuilder {
    ops: Vec<PlanOp>,
}

impl PlanBuilder {
    /// Adds a filter stage (repeatable; conditions AND together).
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.ops.push(PlanOp::Filter(predicate));
        self
    }

    /// Sets the grouping projection.
    #[must_use]
    pub fn map(mut self, projection: Projection) -> Self {
        self.ops.push(PlanOp::MapKey(projection));
        self
    }

    /// Adds the distinct stage.
    #[must_use]
    pub fn distinct(mut self, projection: Projection) -> Self {
        self.ops.push(PlanOp::Distinct(projection));
        self
    }

    /// Sets the aggregation function (required).
    #[must_use]
    pub fn reduce(mut self, aggregate: Aggregate) -> Self {
        self.ops.push(PlanOp::Reduce(aggregate));
        self
    }

    /// Sets the threshold bound.
    #[must_use]
    pub fn threshold(mut self, bound: u64) -> Self {
        self.ops.push(PlanOp::Threshold(bound));
        self
    }

    /// Validates and builds the plan.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryPlan::new`] validation errors.
    pub fn build(self) -> Result<QueryPlan, ConfigError> {
        QueryPlan::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_normal_form() {
        let plan = QueryPlan::builder()
            .filter(Predicate::proto_eq(6))
            .map(Projection::Src)
            .distinct(Projection::DstPort)
            .reduce(Aggregate::Count)
            .threshold(10)
            .build()
            .unwrap();
        assert_eq!(plan.group(), Projection::Src);
        assert_eq!(plan.distinct(), Some(Projection::DstPort));
        assert_eq!(plan.aggregate(), Aggregate::Count);
        assert_eq!(plan.threshold(), Some(10));
        assert!(!plan.has_count_filter());
        assert_eq!(plan.filters().count(), 1);
    }

    #[test]
    fn reduce_is_mandatory() {
        let err = QueryPlan::builder()
            .map(Projection::Dst)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("reduce"), "{err}");
    }

    #[test]
    fn out_of_order_and_duplicate_stages_rejected() {
        for ops in [
            vec![
                PlanOp::Reduce(Aggregate::Sum),
                PlanOp::MapKey(Projection::Src),
            ],
            vec![
                PlanOp::MapKey(Projection::Src),
                PlanOp::Filter(Predicate::proto_eq(6)),
                PlanOp::Reduce(Aggregate::Sum),
            ],
            vec![
                PlanOp::MapKey(Projection::Src),
                PlanOp::MapKey(Projection::Dst),
                PlanOp::Reduce(Aggregate::Sum),
            ],
            vec![
                PlanOp::Reduce(Aggregate::Sum),
                PlanOp::Threshold(1),
                PlanOp::Threshold(2),
            ],
        ] {
            assert!(QueryPlan::new(ops).is_err());
        }
    }

    #[test]
    fn defaults_are_flow_group_no_threshold() {
        let plan = QueryPlan::builder().reduce(Aggregate::Sum).build().unwrap();
        assert_eq!(plan.group(), Projection::Flow);
        assert_eq!(plan.distinct(), None);
        assert_eq!(plan.threshold(), None);
    }

    #[test]
    fn count_filters_are_flagged() {
        let plan = QueryPlan::builder()
            .filter(Predicate::count(CmpOp::Ge, 5))
            .reduce(Aggregate::Count)
            .build()
            .unwrap();
        assert!(plan.has_count_filter());
    }

    #[test]
    fn projection_zeroes_unselected_fields() {
        let key = FlowKey::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 1000, 2000, 17);
        let s = Projection::Src.project(&key);
        assert_eq!(s.src_ip(), key.src_ip());
        assert_eq!(s.dst_ip(), Ipv4Addr::new(0));
        assert_eq!((s.src_port(), s.dst_port(), s.protocol()), (0, 0, 0));
        assert_eq!(Projection::Flow.project(&key), key);
        let dp = Projection::DstPort.project(&key);
        assert_eq!(dp.dst_port(), 2000);
        assert!(Projection::DstPort.format(&dp).contains("2000"));
    }

    #[test]
    fn predicates_test_fields_and_counts() {
        let key = FlowKey::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 80, 443, 6);
        assert!(Predicate::proto_eq(6).test(&key, 1));
        assert!(!Predicate::proto_eq(17).test(&key, 1));
        assert!(Predicate::src_eq([10, 0, 0, 1].into()).test(&key, 1));
        assert!(Predicate::dst_eq([10, 0, 0, 2].into()).test(&key, 1));
        assert!(Predicate::key(Field::DstPort, CmpOp::Ge, 400).test(&key, 1));
        assert!(Predicate::count(CmpOp::Gt, 3).test(&key, 4));
        assert!(!Predicate::count(CmpOp::Gt, 3).test(&key, 3));
        assert!(Predicate::count(CmpOp::Le, 3).test(&key, 3));
        assert!(Predicate::count(CmpOp::Lt, 3).test(&key, 2));
        assert!(Predicate::count(CmpOp::Ne, 3).test(&key, 2));
    }
}
