//! Declarative telemetry queries over the collector pipeline.
//!
//! The paper evaluates HashFlow through four fixed applications (flow
//! records, size estimation, heavy hitters, cardinality — §IV). A
//! production collector serves arbitrary operator questions; this crate
//! turns the pipeline into a general telemetry engine with Sonata-style
//! declarative query plans:
//!
//! ```text
//! filter proto=6 | map dst | distinct src | reduce count | threshold 40
//! ```
//!
//! * [`QueryPlan`] — the validated plan IR
//!   (`filter* → map → distinct? → reduce → threshold?`), built with a
//!   typed [builder](QueryPlan::builder) or parsed from the compact text
//!   form above.
//! * [`execute`] / [`execute_snapshot`] — post-hoc evaluation over flow
//!   record reports and sealed
//!   [`EpochSnapshot`](hashflow_monitor::EpochSnapshot)s.
//! * [`StreamingQuery`] / [`QueryMonitor`] — the same semantics evaluated
//!   incrementally against the live packet stream;
//!   [`QueryMonitor`] implements
//!   [`FlowMonitor`](hashflow_monitor::FlowMonitor), so plans ride every
//!   ingestion path (scalar, batched, sharded, collector/rotator).
//! * [`TelemetryApp`] — the built-in application library (superspreader,
//!   DDoS victim, port scan, heavy changer, flow-size entropy) as plans
//!   plus cross-epoch state.
//!
//! The two executors agree exactly whenever the record report equals the
//! true flow multiset (`tests/query_equivalence.rs` pins this for
//! exact-mode monitors across both HashFlow table schemes and the
//! sharded path); over an approximate monitor's report, [`execute`]
//! inherits that monitor's approximation — the trade-off the
//! `queryapps` experiment quantifies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod exec;
mod monitor;
mod parse;
mod plan;

pub use apps::{shannon_entropy_bits, AppKind, AppVerdict, TelemetryApp};
pub use exec::{execute, execute_snapshot, QueryResult, QueryRow, StreamingQuery};
pub use monitor::{QueryId, QueryMonitor};
pub use plan::{Aggregate, CmpOp, Field, PlanBuilder, PlanOp, Predicate, Projection, QueryPlan};

// Doctests name error types from the types crate; re-export it so
// downstream examples need only this crate.
pub use hashflow_types;
