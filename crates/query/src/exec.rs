//! Plan execution.
//!
//! Two executors share one semantics, defined over the *flow multiset* of
//! an epoch (each flow a `(key, packet count)` pair):
//!
//! 1. **filter** — a flow passes iff every predicate holds (key
//!    predicates over its five-tuple, count predicates over its final
//!    epoch packet count).
//! 2. **map** — the grouping key is the projected five-tuple.
//! 3. **distinct** — each `(group, projected sub-key)` pair is counted
//!    once, with value 1, regardless of flow sizes.
//! 4. **reduce** — per group: `sum` adds packet counts, `count` counts
//!    distinct items (flows, or pairs after `distinct`), `max` takes the
//!    largest single item.
//! 5. **threshold** — groups whose aggregate is at least the bound
//!    survive.
//!
//! [`execute`] evaluates post hoc over a record report (exact for the
//! report it is given — over a sealed [`EpochSnapshot`] of an exact
//! monitor it is ground truth; over a sketch's report it inherits the
//! sketch's approximation). [`StreamingQuery`] evaluates the same plan
//! incrementally, packet by packet, and is always exact with respect to
//! the raw stream; `tests/query_equivalence.rs` pins the two to agree on
//! exact-mode monitors.

use crate::plan::{Aggregate, Projection, QueryPlan};
use hashflow_monitor::EpochSnapshot;
use hashflow_types::{FlowKey, FlowRecord, Packet};
use std::collections::{HashMap, HashSet};

/// One group of a query answer: the projected key and its aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryRow {
    /// Projected grouping key (non-projected fields zeroed).
    pub key: FlowKey,
    /// Aggregate value of the group.
    pub value: u64,
}

/// A query answer: the surviving groups, sorted by aggregate descending
/// (ties by key ascending — the workspace's heavy-hitter report order),
/// tagged with the plan's grouping projection so keys render sensibly.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    group: Projection,
    rows: Vec<QueryRow>,
}

impl QueryResult {
    fn from_groups(plan: &QueryPlan, groups: HashMap<FlowKey, u64>) -> Self {
        let bound = plan.threshold().unwrap_or(0);
        let mut rows: Vec<QueryRow> = groups
            .into_iter()
            .filter(|(_, value)| *value >= bound)
            .map(|(key, value)| QueryRow { key, value })
            .collect();
        rows.sort_unstable_by(|a, b| b.value.cmp(&a.value).then(a.key.cmp(&b.key)));
        QueryResult {
            group: plan.group(),
            rows,
        }
    }

    /// The plan's grouping projection (how [`QueryRow::key`]s should be
    /// rendered).
    pub const fn group(&self) -> Projection {
        self.group
    }

    /// The surviving groups, largest aggregate first.
    pub fn rows(&self) -> &[QueryRow] {
        &self.rows
    }

    /// Number of surviving groups.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no group survived.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aggregate of one group, if it survived.
    pub fn get(&self, key: &FlowKey) -> Option<u64> {
        self.rows.iter().find(|r| r.key == *key).map(|r| r.value)
    }

    /// The surviving group keys as a set (detection-style consumption).
    pub fn key_set(&self) -> HashSet<FlowKey> {
        self.rows.iter().map(|r| r.key).collect()
    }
}

/// Folds one flow observation into the per-group aggregation state.
fn reduce_flow(
    plan: &QueryPlan,
    groups: &mut HashMap<FlowKey, u64>,
    seen: &mut HashSet<(FlowKey, FlowKey)>,
    key: &FlowKey,
    count: u64,
) {
    let group = plan.group().project(key);
    match plan.distinct() {
        Some(sub) => {
            // Distinct items all carry value 1: sum == count == number of
            // deduplicated pairs, max == 1 for any non-empty group.
            if seen.insert((group, sub.project(key))) {
                match plan.aggregate() {
                    Aggregate::Sum | Aggregate::Count => *groups.entry(group).or_insert(0) += 1,
                    Aggregate::Max => {
                        groups.insert(group, 1);
                    }
                }
            }
        }
        None => match plan.aggregate() {
            Aggregate::Sum => *groups.entry(group).or_insert(0) += count,
            // One item per distinct flow key, however often it is
            // reported (approximate reports can duplicate keys).
            Aggregate::Count => {
                if seen.insert((group, *key)) {
                    *groups.entry(group).or_insert(0) += 1;
                }
            }
            Aggregate::Max => {
                let slot = groups.entry(group).or_insert(0);
                *slot = (*slot).max(count);
            }
        },
    }
}

/// Evaluates `plan` over a flow record report, post hoc.
///
/// # Examples
///
/// ```
/// use hashflow_query::{execute, QueryPlan};
/// use hashflow_types::{FlowKey, FlowRecord};
///
/// let plan: QueryPlan = "map src | distinct dst | reduce count | threshold 2".parse()?;
/// let mk = |s: [u8; 4], d: [u8; 4]| {
///     FlowRecord::new(FlowKey::new(s.into(), d.into(), 1, 2, 6), 9)
/// };
/// let records = [
///     mk([1, 1, 1, 1], [2, 2, 2, 2]),
///     mk([1, 1, 1, 1], [3, 3, 3, 3]),
///     mk([9, 9, 9, 9], [2, 2, 2, 2]),
/// ];
/// let result = execute(&plan, records.iter());
/// assert_eq!(result.len(), 1); // only 1.1.1.1 reaches 2 distinct dsts
/// assert_eq!(result.rows()[0].value, 2);
/// # Ok::<(), hashflow_query::hashflow_types::ConfigError>(())
/// ```
pub fn execute<'a, I>(plan: &QueryPlan, records: I) -> QueryResult
where
    I: IntoIterator<Item = &'a FlowRecord>,
{
    let mut groups = HashMap::new();
    let mut seen = HashSet::new();
    for rec in records {
        let (key, count) = (rec.key(), u64::from(rec.count()));
        if plan.filters().all(|p| p.test(&key, count)) {
            reduce_flow(plan, &mut groups, &mut seen, &key, count);
        }
    }
    QueryResult::from_groups(plan, groups)
}

/// Evaluates `plan` over a sealed epoch — the post-hoc path of the
/// collector pipeline (`seal()` once, ask any number of questions).
pub fn execute_snapshot(plan: &QueryPlan, snapshot: &EpochSnapshot) -> QueryResult {
    execute(plan, snapshot.as_records())
}

/// Incremental plan evaluation over the live packet stream.
///
/// Per-packet work is O(filters) plus one or two hash-map operations; the
/// state held is exactly what the plan needs:
///
/// * key filters are decided per packet, dropping flows before they cost
///   any state;
/// * `distinct` keeps the deduplication set and per-group counters;
/// * `reduce sum` keeps one counter per group;
/// * `reduce count` keeps the distinct-flow set per group;
/// * `reduce max` additionally keeps per-flow counts (a maximum over
///   final counts cannot be formed without them);
/// * plans with **count filters** cannot be decided per packet at all, so
///   the stream state degrades gracefully to exact per-flow counts and
///   [`StreamingQuery::answer`] defers to the record-level executor.
///
/// Answers are exact with respect to the packets observed.
#[derive(Debug, Clone)]
pub struct StreamingQuery {
    plan: QueryPlan,
    /// Per-group aggregates (all modes except deferred).
    groups: HashMap<FlowKey, u64>,
    /// Deduplication set: `(group, sub-key)` pairs for `distinct`,
    /// `(group, flow key)` pairs for `reduce count`.
    seen: HashSet<(FlowKey, FlowKey)>,
    /// Exact per-flow counts, kept only when the plan needs them
    /// (`reduce max`, or any count filter).
    flow_counts: HashMap<FlowKey, u64>,
    /// Deferred mode: count filters force whole-plan evaluation at
    /// answer time over `flow_counts`.
    deferred: bool,
}

impl StreamingQuery {
    /// Compiles a plan into empty streaming state.
    pub fn new(plan: QueryPlan) -> Self {
        let deferred = plan.has_count_filter();
        StreamingQuery {
            deferred,
            groups: HashMap::new(),
            seen: HashSet::new(),
            flow_counts: HashMap::new(),
            plan,
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Folds one packet into the state.
    pub fn observe(&mut self, packet: &Packet) {
        let key = packet.key();
        // Key-level filters are decided now; count filters never are
        // (deferred mode keeps every key-passing flow).
        if !self
            .plan
            .filters()
            .all(|p| !p.is_key_level() || p.test(&key, 0))
        {
            return;
        }
        if self.deferred {
            *self.flow_counts.entry(key).or_insert(0) += 1;
            return;
        }
        match (self.plan.distinct(), self.plan.aggregate()) {
            (Some(_), _) | (None, Aggregate::Count) => {
                // reduce_flow's dedup path counts each pair / flow once;
                // per-packet counts are irrelevant, so pass 1.
                reduce_flow(&self.plan, &mut self.groups, &mut self.seen, &key, 1);
            }
            (None, Aggregate::Sum) => {
                let group = self.plan.group().project(&key);
                *self.groups.entry(group).or_insert(0) += 1;
            }
            (None, Aggregate::Max) => {
                let count = self.flow_counts.entry(key).or_insert(0);
                *count += 1;
                let group = self.plan.group().project(&key);
                let slot = self.groups.entry(group).or_insert(0);
                *slot = (*slot).max(*count);
            }
        }
    }

    /// Folds a batch of packets into the state.
    pub fn observe_batch(&mut self, packets: &[Packet]) {
        for p in packets {
            self.observe(p);
        }
    }

    /// The current answer (threshold applied, groups sorted).
    pub fn answer(&self) -> QueryResult {
        if self.deferred {
            let records: Vec<FlowRecord> = self
                .flow_counts
                .iter()
                .map(|(k, c)| FlowRecord::new(*k, (*c).min(u64::from(u32::MAX)) as u32))
                .collect();
            return execute(&self.plan, records.iter());
        }
        QueryResult::from_groups(
            &self.plan,
            self.groups.iter().map(|(k, v)| (*k, *v)).collect(),
        )
    }

    /// Clears the state for a fresh epoch (the plan is kept).
    pub fn reset(&mut self) {
        self.groups.clear();
        self.seen.clear();
        self.flow_counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: u8, dst: u8, dport: u16, proto: u8) -> FlowKey {
        FlowKey::new(
            [10, 0, 0, src].into(),
            [10, 9, 9, dst].into(),
            1,
            dport,
            proto,
        )
    }

    fn run_both(plan_text: &str, flows: &[(FlowKey, u32)]) -> (QueryResult, QueryResult) {
        let plan: QueryPlan = plan_text.parse().unwrap();
        let records: Vec<FlowRecord> = flows.iter().map(|(k, c)| FlowRecord::new(*k, *c)).collect();
        let post_hoc = execute(&plan, records.iter());
        let mut stream = StreamingQuery::new(plan);
        // Interleave packets round-robin so streaming sees flows mixed.
        let mut remaining: Vec<(FlowKey, u32)> = flows.to_vec();
        while remaining.iter().any(|(_, c)| *c > 0) {
            for (k, c) in &mut remaining {
                if *c > 0 {
                    stream.observe(&Packet::new(*k, 0, 64));
                    *c -= 1;
                }
            }
        }
        (post_hoc, stream.answer())
    }

    #[test]
    fn superspreader_shape_agrees_across_executors() {
        // src 1 contacts 3 dsts, src 2 contacts 1.
        let flows = [
            (key(1, 1, 80, 6), 5),
            (key(1, 2, 80, 6), 1),
            (key(1, 3, 80, 6), 2),
            (key(2, 1, 80, 6), 9),
        ];
        let (post, live) = run_both(
            "map src | distinct dst | reduce count | threshold 3",
            &flows,
        );
        assert_eq!(post, live);
        assert_eq!(post.len(), 1);
        assert_eq!(post.rows()[0].value, 3);
        assert_eq!(
            post.rows()[0].key,
            Projection::Src.project(&key(1, 0, 0, 0))
        );
    }

    #[test]
    fn sum_count_max_agree_across_executors() {
        let flows = [
            (key(1, 1, 80, 6), 5),
            (key(1, 2, 443, 6), 3),
            (key(2, 1, 53, 17), 7),
        ];
        for plan in [
            "map src | reduce sum",
            "map src | reduce count",
            "map src | reduce max",
            "reduce sum",
            "map dst | reduce max | threshold 4",
            "filter proto=6 | map src | reduce sum",
        ] {
            let (post, live) = run_both(plan, &flows);
            assert_eq!(post, live, "{plan}");
        }
        let (post, _) = run_both("map src | reduce max", &flows);
        assert_eq!(
            post.get(&Projection::Src.project(&key(1, 0, 0, 0))),
            Some(5)
        );
    }

    #[test]
    fn count_filter_defers_but_agrees() {
        let flows = [
            (key(1, 1, 80, 6), 5),
            (key(1, 2, 80, 6), 1),
            (key(2, 1, 80, 6), 2),
        ];
        let (post, live) = run_both("filter count>=2 | map src | reduce count", &flows);
        assert_eq!(post, live);
        // src 1 has one flow >= 2 packets, src 2 has one.
        assert_eq!(post.len(), 2);
        let plan: QueryPlan = "filter count>=2 | map src | reduce count".parse().unwrap();
        assert!(StreamingQuery::new(plan).deferred);
    }

    #[test]
    fn key_filters_drop_before_state() {
        let plan: QueryPlan = "filter proto=6 | map src | reduce sum".parse().unwrap();
        let mut stream = StreamingQuery::new(plan);
        stream.observe(&Packet::new(key(1, 1, 80, 17), 0, 64));
        assert!(stream.groups.is_empty() && stream.flow_counts.is_empty());
        stream.observe(&Packet::new(key(1, 1, 80, 6), 0, 64));
        assert_eq!(stream.answer().len(), 1);
    }

    #[test]
    fn duplicate_report_keys_count_once() {
        // Approximate reports can carry the same key twice; `reduce
        // count` must not double-count the flow.
        let plan: QueryPlan = "map src | reduce count".parse().unwrap();
        let k = key(1, 1, 80, 6);
        let records = [FlowRecord::new(k, 3), FlowRecord::new(k, 9)];
        let result = execute(&plan, records.iter());
        assert_eq!(result.rows()[0].value, 1);
    }

    #[test]
    fn reset_clears_state_for_next_epoch() {
        let plan: QueryPlan = "map src | distinct dst | reduce count".parse().unwrap();
        let mut stream = StreamingQuery::new(plan);
        stream.observe(&Packet::new(key(1, 1, 80, 6), 0, 64));
        assert_eq!(stream.answer().len(), 1);
        stream.reset();
        assert!(stream.answer().is_empty());
        // Dedup state restarted: the same pair counts again.
        stream.observe(&Packet::new(key(1, 1, 80, 6), 0, 64));
        assert_eq!(stream.answer().rows()[0].value, 1);
    }

    #[test]
    fn result_accessors() {
        let flows = [(key(1, 1, 80, 6), 5), (key(2, 1, 80, 6), 2)];
        let (post, _) = run_both("map src | reduce sum", &flows);
        assert_eq!(post.group(), Projection::Src);
        assert_eq!(post.len(), 2);
        assert!(!post.is_empty());
        assert_eq!(post.key_set().len(), 2);
        assert_eq!(post.get(&key(9, 9, 9, 9)), None);
        // Sorted by value descending.
        assert!(post.rows()[0].value >= post.rows()[1].value);
    }

    #[test]
    fn empty_input_empty_answer() {
        let plan: QueryPlan = "map src | reduce sum".parse().unwrap();
        assert!(execute(&plan, &Vec::<FlowRecord>::new()).is_empty());
        assert!(StreamingQuery::new(plan).answer().is_empty());
    }
}
