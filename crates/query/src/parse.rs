//! The compact text form of query plans.
//!
//! Grammar (stages separated by `|`, conditions within a `filter` stage
//! separated by whitespace and ANDed):
//!
//! ```text
//! plan      := stage ("|" stage)*
//! stage     := "filter" cond+ | "map" proj | "distinct" proj
//!            | "reduce" agg | "threshold" N
//! cond      := field op value | "count" op N
//! field     := "src" | "dst" | "srcport" | "dstport" | "proto"
//! op        := "=" | "!=" | "<=" | ">=" | "<" | ">"
//! proj      := "flow" | "src" | "dst" | "srcdst" | "srcport"
//!            | "dstport" | "proto"
//! agg       := "sum" | "count" | "max"
//! ```
//!
//! `src`/`dst` values are dotted-quad addresses; everything else is a
//! plain number. Example:
//! `filter proto=6 | map dst | distinct src | reduce count | threshold 40`.

use crate::plan::{Aggregate, CmpOp, Field, PlanOp, Predicate, Projection, QueryPlan};
use hashflow_types::{ConfigError, Ipv4Addr};

fn parse_projection(token: &str) -> Result<Projection, ConfigError> {
    Projection::ALL
        .into_iter()
        .find(|p| p.token() == token)
        .ok_or_else(|| {
            ConfigError::new(format!(
                "unknown projection '{token}'; valid projections: flow, src, dst, \
                 srcdst, srcport, dstport, proto"
            ))
        })
}

fn parse_aggregate(token: &str) -> Result<Aggregate, ConfigError> {
    match token {
        "sum" => Ok(Aggregate::Sum),
        "count" => Ok(Aggregate::Count),
        "max" => Ok(Aggregate::Max),
        other => Err(ConfigError::new(format!(
            "unknown aggregate '{other}'; valid aggregates: sum, count, max"
        ))),
    }
}

/// Splits `cond` at its comparison operator. Two-character operators are
/// matched first so `<=` does not parse as `<` with a dangling `=`.
fn split_condition(cond: &str) -> Result<(&str, CmpOp, &str), ConfigError> {
    const OPS: [(&str, CmpOp); 6] = [
        ("!=", CmpOp::Ne),
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
        ("=", CmpOp::Eq),
    ];
    for (token, op) in OPS {
        if let Some(idx) = cond.find(token) {
            return Ok((&cond[..idx], op, &cond[idx + token.len()..]));
        }
    }
    Err(ConfigError::new(format!(
        "filter condition '{cond}' has no comparison operator (=, !=, <, <=, >, >=)"
    )))
}

fn parse_condition(cond: &str) -> Result<Predicate, ConfigError> {
    let (lhs, op, rhs) = split_condition(cond)?;
    let number = |what: &str| -> Result<u64, ConfigError> {
        rhs.parse()
            .map_err(|_| ConfigError::new(format!("bad {what} '{rhs}' in condition '{cond}'")))
    };
    match lhs {
        "count" => Ok(Predicate::count(op, number("count")?)),
        "src" | "dst" => {
            let addr: Ipv4Addr = rhs.parse().map_err(|_| {
                ConfigError::new(format!("bad address '{rhs}' in condition '{cond}'"))
            })?;
            let field = if lhs == "src" {
                Field::SrcIp
            } else {
                Field::DstIp
            };
            Ok(Predicate::key(field, op, u64::from(addr.to_bits())))
        }
        "srcport" => Ok(Predicate::key(Field::SrcPort, op, number("port")?)),
        "dstport" => Ok(Predicate::key(Field::DstPort, op, number("port")?)),
        "proto" => Ok(Predicate::key(Field::Protocol, op, number("protocol")?)),
        other => Err(ConfigError::new(format!(
            "unknown filter field '{other}'; valid fields: src, dst, srcport, dstport, \
             proto, count"
        ))),
    }
}

pub(crate) fn parse_plan(text: &str) -> Result<QueryPlan, ConfigError> {
    let mut ops = Vec::new();
    for stage in text.split('|') {
        let stage = stage.trim();
        let mut words = stage.split_whitespace();
        let head = words
            .next()
            .ok_or_else(|| ConfigError::new("empty stage in query plan (stray '|'?)"))?;
        let mut args = words.peekable();
        let one_arg = |args: &mut dyn Iterator<Item = &str>| -> Result<String, ConfigError> {
            let arg = args
                .next()
                .ok_or_else(|| ConfigError::new(format!("stage '{stage}' needs an argument")))?
                .to_owned();
            if args.next().is_some() {
                return Err(ConfigError::new(format!(
                    "stage '{stage}' takes exactly one argument"
                )));
            }
            Ok(arg)
        };
        match head {
            "filter" => {
                if args.peek().is_none() {
                    return Err(ConfigError::new("'filter' needs at least one condition"));
                }
                for cond in args {
                    ops.push(PlanOp::Filter(parse_condition(cond)?));
                }
            }
            "map" => ops.push(PlanOp::MapKey(parse_projection(&one_arg(&mut args)?)?)),
            "distinct" => ops.push(PlanOp::Distinct(parse_projection(&one_arg(&mut args)?)?)),
            "reduce" => ops.push(PlanOp::Reduce(parse_aggregate(&one_arg(&mut args)?)?)),
            "threshold" => {
                let arg = one_arg(&mut args)?;
                let bound = arg.parse().map_err(|_| {
                    ConfigError::new(format!("bad threshold '{arg}' (expected a number)"))
                })?;
                ops.push(PlanOp::Threshold(bound));
            }
            other => {
                return Err(ConfigError::new(format!(
                    "unknown plan stage '{other}'; valid stages: filter, map, distinct, \
                     reduce, threshold"
                )))
            }
        }
    }
    QueryPlan::new(ops)
}

impl std::str::FromStr for QueryPlan {
    type Err = ConfigError;

    /// Parses the compact text form, e.g.
    /// `filter proto=6 | map dst | distinct src | reduce count | threshold 40`
    /// (grammar in this module's source).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the malformed stage or condition,
    /// or propagating normal-form validation.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_plan(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parses(text: &str) -> QueryPlan {
        text.parse().unwrap_or_else(|e| panic!("{text}: {e}"))
    }

    #[test]
    fn issue_example_parses() {
        let plan = parses("filter proto=6 | map dst | distinct src | reduce count | threshold 40");
        assert_eq!(plan.group(), Projection::Dst);
        assert_eq!(plan.distinct(), Some(Projection::Src));
        assert_eq!(plan.aggregate(), Aggregate::Count);
        assert_eq!(plan.threshold(), Some(40));
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "filter proto=6 | map dst | distinct src | reduce count | threshold 40",
            "map src | distinct dstport | reduce count | threshold 10",
            "filter src=10.0.0.1 dstport>=1024 | map srcdst | reduce sum",
            "filter count>3 | reduce count",
            "map flow | reduce max",
            "reduce sum",
        ] {
            let plan = parses(text);
            let round: QueryPlan = plan.to_string().parse().unwrap();
            assert_eq!(round, plan, "{text} -> {plan}");
        }
    }

    #[test]
    fn address_and_multi_condition_filters() {
        let plan = parses("filter src=192.168.0.1 proto!=17 count<=9 | reduce sum");
        let preds: Vec<_> = plan.filters().copied().collect();
        assert_eq!(preds.len(), 3);
        assert_eq!(
            preds[0],
            Predicate::src_eq(Ipv4Addr::from([192, 168, 0, 1]))
        );
        assert_eq!(preds[1], Predicate::key(Field::Protocol, CmpOp::Ne, 17));
        assert_eq!(preds[2], Predicate::count(CmpOp::Le, 9));
    }

    #[test]
    fn malformed_plans_error_with_context() {
        for (text, needle) in [
            ("", "empty stage"),
            ("map dst", "reduce"),
            ("reduce count | map dst", "out of order"),
            ("frobnicate | reduce sum", "unknown plan stage"),
            ("map inner | reduce sum", "unknown projection"),
            ("reduce median", "unknown aggregate"),
            ("filter | reduce sum", "at least one condition"),
            ("filter proto~6 | reduce sum", "no comparison operator"),
            ("filter warmth=9 | reduce sum", "unknown filter field"),
            ("filter src=10.0.0 | reduce sum", "bad address"),
            ("filter proto=tcp | reduce sum", "bad protocol"),
            ("threshold soon | reduce sum", "bad threshold"),
            ("map src dst | reduce sum", "exactly one argument"),
            ("map | reduce sum", "needs an argument"),
            ("reduce sum | | threshold 1", "empty stage"),
        ] {
            let err = text.parse::<QueryPlan>().unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }
}
