use crate::CounterArray;
use hashflow_hashing::{fast_range, HashFamily, XxHash64};
use hashflow_types::{ConfigError, FlowKey};

/// A count-min sketch (Cormode & Muthukrishnan, 2005) with configurable
/// counter width.
///
/// ElasticSketch's *light part* is a count-min sketch; the paper's §IV-A
/// evaluation configures it as a **single array** of 8-bit counters, but the
/// structure is general (`rows x cols`). Queries return the minimum across
/// rows, an overestimate of the true count (never an underestimate, up to
/// counter saturation).
///
/// # Examples
///
/// ```
/// use hashflow_primitives::CountMinSketch;
/// use hashflow_types::FlowKey;
///
/// let mut cm = CountMinSketch::new(2, 2048, 32, 5)?;
/// let k = FlowKey::from_index(8);
/// cm.add(&k, 3);
/// assert!(cm.query(&k) >= 3);
/// # Ok::<(), hashflow_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: Vec<CounterArray>,
    cols: usize,
    hashes: HashFamily<XxHash64>,
}

impl CountMinSketch {
    /// Creates a sketch of `rows x cols` counters of `counter_bits` each.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero or the counter width
    /// is outside `1..=32`.
    pub fn new(
        rows: usize,
        cols: usize,
        counter_bits: u32,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if rows == 0 {
            return Err(ConfigError::new("count-min sketch needs at least one row"));
        }
        let arrays = (0..rows)
            .map(|_| CounterArray::new(cols, counter_bits))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CountMinSketch {
            rows: arrays,
            cols,
            hashes: HashFamily::new(rows, seed ^ 0xc0c0_c0c0),
        })
    }

    /// Number of rows (independent hash functions).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of counters per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Counter width in bits.
    pub fn counter_bits(&self) -> u32 {
        self.rows[0].width()
    }

    /// Adds `delta` occurrences of `key`. Counters saturate at
    /// `2^counter_bits - 1`.
    pub fn add(&mut self, key: &FlowKey, delta: u64) {
        for (i, row) in self.rows.iter_mut().enumerate() {
            let idx = fast_range(self.hashes.hash(i, key), self.cols);
            row.add(idx, delta);
        }
    }

    /// Adds one occurrence of `key` and returns the new minimum estimate.
    pub fn increment(&mut self, key: &FlowKey) -> u64 {
        self.add(key, 1);
        self.query(key)
    }

    /// Point query: an overestimate of the number of additions for `key`
    /// (exact when no collisions occurred; capped by counter saturation).
    pub fn query(&self, key: &FlowKey) -> u64 {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| row.get(fast_range(self.hashes.hash(i, key), self.cols)))
            .min()
            .expect("sketch has at least one row")
    }

    /// Number of zero counters in the first row — the statistic linear
    /// counting uses for cardinality estimation over the sketch.
    pub fn first_row_zeros(&self) -> usize {
        self.rows[0].count_zeros()
    }

    /// Merges `other` into `self` by cell-wise saturating addition.
    ///
    /// Valid only for sketches of identical geometry *and* hash family
    /// (same master seed): only then does the merged sketch answer
    /// exactly as if one sketch had ingested both streams.
    ///
    /// # Panics
    ///
    /// Panics if the geometry or the hash seeds differ.
    pub fn merge_from(&mut self, other: &CountMinSketch) {
        assert_eq!(
            (self.rows.len(), self.cols, self.counter_bits()),
            (other.rows.len(), other.cols, other.counter_bits()),
            "cannot merge count-min sketches of different geometry"
        );
        assert_eq!(
            self.hashes.master_seed(),
            other.hashes.master_seed(),
            "cannot merge count-min sketches with different hash seeds"
        );
        for (row, other_row) in self.rows.iter_mut().zip(&other.rows) {
            row.merge_add(other_row);
        }
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        for row in &mut self.rows {
            row.reset();
        }
    }

    /// Logical memory footprint in bits.
    pub fn logical_bits(&self) -> usize {
        self.rows.iter().map(CounterArray::logical_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(3, 1024, 32, 1).unwrap();
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u64 {
            let k = FlowKey::from_index(i % 100);
            cm.add(&k, 1 + i % 3);
            *truth.entry(i % 100).or_insert(0u64) += 1 + i % 3;
        }
        for (i, &t) in &truth {
            assert!(cm.query(&FlowKey::from_index(*i)) >= t);
        }
    }

    #[test]
    fn exact_when_sparse() {
        let mut cm = CountMinSketch::new(4, 1 << 14, 32, 2).unwrap();
        for i in 0..50 {
            cm.add(&FlowKey::from_index(i), 7);
        }
        for i in 0..50 {
            assert_eq!(cm.query(&FlowKey::from_index(i)), 7);
        }
        assert_eq!(cm.query(&FlowKey::from_index(999)), 0);
    }

    #[test]
    fn narrow_counters_saturate() {
        let mut cm = CountMinSketch::new(1, 64, 8, 3).unwrap();
        let k = FlowKey::from_index(0);
        cm.add(&k, 1000);
        assert_eq!(cm.query(&k), 255);
    }

    #[test]
    fn increment_returns_estimate() {
        let mut cm = CountMinSketch::new(2, 256, 16, 4).unwrap();
        let k = FlowKey::from_index(3);
        assert_eq!(cm.increment(&k), 1);
        assert_eq!(cm.increment(&k), 2);
    }

    #[test]
    fn reset_and_accounting() {
        let mut cm = CountMinSketch::new(2, 100, 8, 0).unwrap();
        cm.add(&FlowKey::from_index(1), 5);
        assert_eq!(cm.logical_bits(), 2 * 100 * 8);
        assert!(cm.first_row_zeros() < 100);
        cm.reset();
        assert_eq!(cm.first_row_zeros(), 100);
        assert_eq!(cm.rows(), 2);
        assert_eq!(cm.cols(), 100);
        assert_eq!(cm.counter_bits(), 8);
    }

    #[test]
    fn merge_equals_single_sketch_over_union() {
        let mut single = CountMinSketch::new(3, 512, 32, 9).unwrap();
        let mut a = CountMinSketch::new(3, 512, 32, 9).unwrap();
        let mut b = CountMinSketch::new(3, 512, 32, 9).unwrap();
        for i in 0..400u64 {
            let k = FlowKey::from_index(i % 80);
            single.add(&k, 1 + i % 5);
            if i % 2 == 0 {
                a.add(&k, 1 + i % 5);
            } else {
                b.add(&k, 1 + i % 5);
            }
        }
        a.merge_from(&b);
        for i in 0..80u64 {
            let k = FlowKey::from_index(i);
            assert_eq!(a.query(&k), single.query(&k), "flow {i}");
        }
        assert_eq!(a.first_row_zeros(), single.first_row_zeros());
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn merge_of_mismatched_geometry_panics() {
        let mut a = CountMinSketch::new(2, 64, 8, 0).unwrap();
        a.merge_from(&CountMinSketch::new(2, 128, 8, 0).unwrap());
    }

    #[test]
    #[should_panic(expected = "different hash seeds")]
    fn merge_of_mismatched_seeds_panics() {
        let mut a = CountMinSketch::new(2, 64, 8, 0).unwrap();
        a.merge_from(&CountMinSketch::new(2, 64, 8, 1).unwrap());
    }

    #[test]
    fn zero_rows_rejected() {
        assert!(CountMinSketch::new(0, 10, 8, 0).is_err());
        assert!(CountMinSketch::new(1, 0, 8, 0).is_err());
    }
}
