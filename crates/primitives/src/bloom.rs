use crate::BitVec;
use hashflow_hashing::{fast_range, HashFamily, XxHash64};
use hashflow_types::{ConfigError, FlowKey};

/// A classic Bloom filter over flow keys (Bloom, CACM 1970).
///
/// FlowRadar uses a Bloom filter to decide whether an arriving packet starts
/// a *new* flow (§II): only first packets update the flow-set fields of the
/// counting table. False positives make FlowRadar under-count flows; there
/// are no false negatives.
///
/// # Examples
///
/// ```
/// use hashflow_primitives::BloomFilter;
/// use hashflow_types::FlowKey;
///
/// let mut bf = BloomFilter::new(4096, 4, 1)?;
/// let k = FlowKey::from_index(9);
/// assert!(!bf.insert(&k), "first insert reports a new element");
/// assert!(bf.insert(&k), "second insert sees it present");
/// # Ok::<(), hashflow_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitVec,
    hashes: HashFamily<XxHash64>,
}

impl BloomFilter {
    /// Creates a filter with `bits` cells and `num_hashes` hash functions.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `bits == 0` or `num_hashes == 0`.
    pub fn new(bits: usize, num_hashes: usize, seed: u64) -> Result<Self, ConfigError> {
        if bits == 0 {
            return Err(ConfigError::new("bloom filter needs at least one bit"));
        }
        if num_hashes == 0 {
            return Err(ConfigError::new("bloom filter needs at least one hash"));
        }
        Ok(BloomFilter {
            bits: BitVec::new(bits),
            hashes: HashFamily::new(num_hashes, seed ^ 0xb100_0f11),
        })
    }

    /// Inserts `key`; returns `true` if it was (probably) already present.
    pub fn insert(&mut self, key: &FlowKey) -> bool {
        let mut present = true;
        for i in 0..self.hashes.len() {
            let idx = fast_range(self.hashes.hash(i, key), self.bits.len());
            if !self.bits.get(idx) {
                present = false;
                self.bits.set(idx);
            }
        }
        present
    }

    /// Membership query: `false` means definitely absent.
    pub fn contains(&self, key: &FlowKey) -> bool {
        (0..self.hashes.len()).all(|i| {
            self.bits
                .get(fast_range(self.hashes.hash(i, key), self.bits.len()))
        })
    }

    /// Number of bit cells.
    pub fn bits(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> usize {
        self.hashes.len()
    }

    /// Fraction of bits currently set, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }

    /// Estimates the number of distinct inserted elements from the fill
    /// ratio: `m̂ = -(bits/k) * ln(1 - fill)`. Standard Bloom cardinality
    /// inversion; used in tests and diagnostics.
    pub fn estimate_cardinality(&self) -> f64 {
        let fill = self.fill_ratio();
        if fill >= 1.0 {
            return f64::INFINITY;
        }
        -(self.bits.len() as f64 / self.hashes.len() as f64) * (1.0 - fill).ln()
    }

    /// Unions `other` into `self` bit-wise. Valid only for filters built
    /// with the same size, hash count and seed; afterwards `self` answers
    /// membership as if it had seen both insert streams (false-positive
    /// rate reflects the combined fill).
    ///
    /// # Panics
    ///
    /// Panics if the bit counts differ.
    pub fn union_with(&mut self, other: &BloomFilter) {
        self.bits.union_with(&other.bits);
    }

    /// Clears the filter.
    pub fn reset(&mut self) {
        self.bits.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1 << 14, 4, 3).unwrap();
        let keys: Vec<FlowKey> = (0..1000).map(FlowKey::from_index).collect();
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            assert!(bf.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_is_near_theory() {
        // m = 2^14 bits, k = 4 hashes, n = 1000 elements:
        // p = (1 - e^{-kn/m})^k ~= (1 - e^{-0.244})^4 ~= 0.0022.
        let mut bf = BloomFilter::new(1 << 14, 4, 3).unwrap();
        for i in 0..1000 {
            bf.insert(&FlowKey::from_index(i));
        }
        let fp = (1_000_000..1_020_000)
            .filter(|&i| bf.contains(&FlowKey::from_index(i)))
            .count();
        let rate = fp as f64 / 20_000.0;
        assert!(rate < 0.01, "false positive rate {rate} too high");
    }

    #[test]
    fn insert_returns_presence() {
        let mut bf = BloomFilter::new(1 << 12, 4, 0).unwrap();
        let k = FlowKey::from_index(5);
        assert!(!bf.insert(&k));
        assert!(bf.insert(&k));
    }

    #[test]
    fn cardinality_estimate_tracks_inserts() {
        let mut bf = BloomFilter::new(1 << 16, 4, 1).unwrap();
        for i in 0..5000 {
            bf.insert(&FlowKey::from_index(i));
        }
        let est = bf.estimate_cardinality();
        assert!(
            (est - 5000.0).abs() / 5000.0 < 0.05,
            "estimate {est} too far from 5000"
        );
    }

    #[test]
    fn zero_config_rejected() {
        assert!(BloomFilter::new(0, 4, 0).is_err());
        assert!(BloomFilter::new(64, 0, 0).is_err());
    }

    #[test]
    fn reset_empties_filter() {
        let mut bf = BloomFilter::new(1024, 2, 0).unwrap();
        bf.insert(&FlowKey::from_index(1));
        bf.reset();
        assert_eq!(bf.fill_ratio(), 0.0);
        assert!(!bf.contains(&FlowKey::from_index(1)));
    }

    #[test]
    fn accessors() {
        let bf = BloomFilter::new(100, 3, 0).unwrap();
        assert_eq!(bf.bits(), 100);
        assert_eq!(bf.num_hashes(), 3);
    }

    #[test]
    fn union_sees_both_insert_streams() {
        let mut a = BloomFilter::new(1 << 12, 4, 9).unwrap();
        let mut b = BloomFilter::new(1 << 12, 4, 9).unwrap();
        for i in 0..100 {
            a.insert(&FlowKey::from_index(i));
            b.insert(&FlowKey::from_index(1000 + i));
        }
        a.union_with(&b);
        for i in 0..100 {
            assert!(a.contains(&FlowKey::from_index(i)));
            assert!(a.contains(&FlowKey::from_index(1000 + i)));
        }
    }
}
