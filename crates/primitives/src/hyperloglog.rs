use crate::CounterArray;
use hashflow_hashing::{HashFamily, KeyHasher, XxHash64};
use hashflow_types::{ConfigError, FlowKey};

/// HyperLogLog cardinality estimator (Flajolet et al., 2007).
///
/// The paper's algorithms use *linear counting* (Whang et al.), which is
/// accurate while the backing table has empty cells but saturates once
/// occupancy hits 100 %. HyperLogLog trades a constant ~1.04/√m relative
/// error for an essentially unbounded range, making it the natural
/// replacement when a deployment must count far beyond its table size —
/// the comparison is exercised in this crate's tests and the workspace
/// ablations.
///
/// Registers are 6-bit (packed), enough for ranks up to 63.
///
/// # Examples
///
/// ```
/// use hashflow_primitives::HyperLogLog;
/// use hashflow_types::FlowKey;
///
/// let mut hll = HyperLogLog::new(12, 1)?; // 4096 registers, ~1.6% error
/// for i in 0..50_000u64 {
///     hll.observe(&FlowKey::from_index(i));
/// }
/// let est = hll.estimate();
/// assert!((est - 50_000.0).abs() / 50_000.0 < 0.05);
/// # Ok::<(), hashflow_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    registers: CounterArray,
    precision: u32,
    hasher: XxHash64,
}

impl HyperLogLog {
    /// Creates an estimator with `2^precision` registers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `precision` is outside `4..=18`.
    pub fn new(precision: u32, seed: u64) -> Result<Self, ConfigError> {
        if !(4..=18).contains(&precision) {
            return Err(ConfigError::new("hyperloglog precision must be in 4..=18"));
        }
        Ok(HyperLogLog {
            registers: CounterArray::new(1 << precision, 6)?,
            precision,
            hasher: {
                // Derive the single hash member deterministically from the
                // seed, consistent with the HashFamily convention.
                let family: HashFamily<XxHash64> = HashFamily::new(1, seed ^ 0x4177);
                let _ = &family;
                XxHash64::with_seed(seed ^ 0x4177_11aa)
            },
        })
    }

    /// Number of registers.
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// Records an observation of `key`.
    pub fn observe(&mut self, key: &FlowKey) {
        let hash = self.hasher.hash_key(key);
        let idx = (hash >> (64 - self.precision)) as usize;
        let remaining = hash << self.precision;
        // Rank: position of the leftmost 1-bit in the remaining bits, 1-based;
        // all-zero remainder gets the maximum rank.
        let rank = if remaining == 0 {
            (64 - self.precision + 1) as u64
        } else {
            u64::from(remaining.leading_zeros() + 1)
        };
        if rank > self.registers.get(idx) {
            self.registers.set(idx, rank);
        }
    }

    /// Current cardinality estimate, with the standard small-range
    /// (linear-counting) and bias corrections.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for i in 0..self.registers.len() {
            let r = self.registers.get(i);
            sum += 1.0 / f64::from(1u32 << r.min(63) as u32);
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: fall back to linear counting.
            crate::linear_counting_estimate(self.registers.len(), zeros)
        } else {
            raw
        }
    }

    /// Merges `other` into `self` by register-wise maximum — the classic
    /// HyperLogLog union. The merged estimator behaves exactly as if one
    /// estimator had observed both streams, so it is safe for overlapping
    /// streams as well as disjoint RSS shards.
    ///
    /// Both estimators must have been built with the same precision *and*
    /// seed (same hash function); merging differently-seeded estimators is
    /// a logic error this method cannot detect beyond the precision check.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge hyperloglogs of different precision"
        );
        self.registers.merge_max(&other.registers);
    }

    /// Clears all registers.
    pub fn reset(&mut self) {
        self.registers.reset();
    }

    /// Logical memory footprint in bits.
    pub fn memory_bits(&self) -> usize {
        self.registers.logical_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearCounter;

    #[test]
    fn tracks_distinct_not_total() {
        let mut hll = HyperLogLog::new(12, 0).unwrap();
        for _ in 0..3 {
            for i in 0..10_000u64 {
                hll.observe(&FlowKey::from_index(i));
            }
        }
        let est = hll.estimate();
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.05,
            "estimate {est} vs 10000"
        );
    }

    #[test]
    fn accuracy_scales_with_precision() {
        // Relative error ~1.04/sqrt(m): precision 14 should beat 8 on a
        // large set, with slack for randomness.
        let truth = 200_000u64;
        let mut small = HyperLogLog::new(8, 5).unwrap();
        let mut large = HyperLogLog::new(14, 5).unwrap();
        for i in 0..truth {
            let k = FlowKey::from_index(i);
            small.observe(&k);
            large.observe(&k);
        }
        let err = |e: f64| (e - truth as f64).abs() / truth as f64;
        assert!(err(large.estimate()) < 0.03, "large {}", large.estimate());
        assert!(err(small.estimate()) < 0.20, "small {}", small.estimate());
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let mut hll = HyperLogLog::new(12, 2).unwrap();
        for i in 0..100u64 {
            hll.observe(&FlowKey::from_index(i));
        }
        let est = hll.estimate();
        assert!((est - 100.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    fn survives_range_where_linear_counting_saturates() {
        // Same memory: 4096 six-bit HLL registers ~= 24576 linear-counting
        // bits. Count 1M flows: linear counting saturates, HLL stays
        // accurate.
        let mut hll = HyperLogLog::new(12, 3).unwrap();
        let mut lc = LinearCounter::new(hll.memory_bits(), 3);
        let truth = 1_000_000u64;
        for i in 0..truth {
            let k = FlowKey::from_index(i);
            hll.observe(&k);
            lc.observe(&k);
        }
        let hll_err = (hll.estimate() - truth as f64).abs() / truth as f64;
        assert!(hll_err < 0.05, "hll error {hll_err}");
        assert!(
            lc.estimate().is_infinite() || lc.estimate() < truth as f64 * 0.5,
            "linear counting should be useless here, got {}",
            lc.estimate()
        );
    }

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(10, 0).unwrap();
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut hll = HyperLogLog::new(10, 0).unwrap();
        hll.observe(&FlowKey::from_index(1));
        assert!(hll.estimate() > 0.0);
        hll.reset();
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn precision_bounds_enforced() {
        assert!(HyperLogLog::new(3, 0).is_err());
        assert!(HyperLogLog::new(19, 0).is_err());
        assert!(HyperLogLog::new(4, 0).is_ok());
    }

    #[test]
    fn memory_accounting() {
        let hll = HyperLogLog::new(10, 0).unwrap();
        assert_eq!(hll.memory_bits(), 1024 * 6);
        assert_eq!(hll.registers(), 1024);
    }

    #[test]
    fn merge_equals_single_estimator_over_union() {
        // Sharded observation: split 60K keys across 4 estimators (same
        // seed), merge, and compare against one estimator that saw all of
        // them. Register-max union makes the two *identical*.
        let mut single = HyperLogLog::new(12, 7).unwrap();
        let mut shards: Vec<HyperLogLog> =
            (0..4).map(|_| HyperLogLog::new(12, 7).unwrap()).collect();
        for i in 0..60_000u64 {
            let k = FlowKey::from_index(i);
            single.observe(&k);
            shards[(i % 4) as usize].observe(&k);
        }
        let (first, rest) = shards.split_first_mut().unwrap();
        for s in rest {
            first.merge(s);
        }
        assert_eq!(first.estimate(), single.estimate());
    }

    #[test]
    fn merge_handles_overlapping_streams() {
        let mut a = HyperLogLog::new(12, 1).unwrap();
        let mut b = HyperLogLog::new(12, 1).unwrap();
        for i in 0..20_000u64 {
            a.observe(&FlowKey::from_index(i));
        }
        for i in 10_000..30_000u64 {
            b.observe(&FlowKey::from_index(i));
        }
        a.merge(&b);
        let est = a.estimate();
        assert!(
            (est - 30_000.0).abs() / 30_000.0 < 0.05,
            "union estimate {est} vs 30000"
        );
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_of_mismatched_precision_panics() {
        let mut a = HyperLogLog::new(10, 0).unwrap();
        a.merge(&HyperLogLog::new(11, 0).unwrap());
    }
}
