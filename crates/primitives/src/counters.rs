use hashflow_types::ConfigError;

/// A dense array of fixed-width saturating counters (1..=32 bits each),
/// bit-packed into `u64` words.
///
/// ElasticSketch's light part and HashFlow's ancillary table both use 8-bit
/// counters (§IV-A); FlowRadar's FlowCount field uses 16 bits. Packing them
/// makes the equal-memory accounting exact instead of rounding every small
/// counter up to a machine word.
///
/// # Examples
///
/// ```
/// use hashflow_primitives::CounterArray;
/// let mut counters = CounterArray::new(100, 8)?;
/// counters.increment(3);
/// assert_eq!(counters.get(3), 1);
/// counters.set(3, 255);
/// counters.increment(3); // saturates at 2^8 - 1
/// assert_eq!(counters.get(3), 255);
/// # Ok::<(), hashflow_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterArray {
    words: Vec<u64>,
    len: usize,
    width: u32,
    max: u64,
}

impl CounterArray {
    /// Creates `len` zeroed counters of `width` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `width` is outside `1..=32` or `len == 0`.
    pub fn new(len: usize, width: u32) -> Result<Self, ConfigError> {
        if len == 0 {
            return Err(ConfigError::new("counter array needs at least one cell"));
        }
        if width == 0 || width > 32 {
            return Err(ConfigError::new("counter width must be in 1..=32 bits"));
        }
        let total_bits = len
            .checked_mul(width as usize)
            .ok_or_else(|| ConfigError::new("counter array size overflows"))?;
        Ok(CounterArray {
            words: vec![0; total_bits.div_ceil(64)],
            len,
            width,
            max: (1u64 << width) - 1,
        })
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the array holds zero counters (construction forbids
    /// this, so this is always `false` for constructed arrays).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counter width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Maximum representable value (`2^width - 1`), at which counters
    /// saturate.
    pub fn max_value(&self) -> u64 {
        self.max
    }

    #[inline]
    fn locate(&self, index: usize) -> (usize, u32, Option<(usize, u32)>) {
        let bit = index * self.width as usize;
        let word = bit / 64;
        let offset = (bit % 64) as u32;
        let first_bits = 64 - offset;
        if first_bits >= self.width {
            (word, offset, None)
        } else {
            (word, offset, Some((word + 1, self.width - first_bits)))
        }
    }

    /// Hints the CPU to pull the word backing counter `index` toward L1
    /// for a future access ([`hashflow_hashing::prefetch_read`]).
    /// Out-of-range indices are ignored — a prefetch is advisory.
    #[inline]
    pub fn prefetch(&self, index: usize) {
        if index < self.len {
            let bit = index * self.width as usize;
            hashflow_hashing::prefetch_read(&self.words, bit / 64);
        }
    }

    /// Reads counter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn get(&self, index: usize) -> u64 {
        assert!(
            index < self.len,
            "counter index {index} out of range {}",
            self.len
        );
        let (word, offset, spill) = self.locate(index);
        let mut value = (self.words[word] >> offset) & self.max;
        if let Some((next, bits)) = spill {
            let lo_bits = self.width - bits;
            value |= (self.words[next] & ((1u64 << bits) - 1)) << lo_bits;
            value &= self.max;
        }
        value
    }

    /// Writes counter `index` (clamped to the representable range).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64) {
        assert!(
            index < self.len,
            "counter index {index} out of range {}",
            self.len
        );
        let value = value.min(self.max);
        let (word, offset, spill) = self.locate(index);
        match spill {
            None => {
                self.words[word] &= !(self.max << offset);
                self.words[word] |= value << offset;
            }
            Some((next, bits)) => {
                let lo_bits = self.width - bits;
                let lo_mask = (1u64 << lo_bits) - 1;
                self.words[word] &= !(lo_mask << offset);
                self.words[word] |= (value & lo_mask) << offset;
                let hi_mask = (1u64 << bits) - 1;
                self.words[next] &= !hi_mask;
                self.words[next] |= value >> lo_bits;
            }
        }
    }

    /// Adds one to counter `index`, saturating at [`Self::max_value`].
    /// Returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn increment(&mut self, index: usize) -> u64 {
        self.add(index, 1)
    }

    /// Adds `delta` to counter `index`, saturating. Returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn add(&mut self, index: usize, delta: u64) -> u64 {
        let value = self.get(index).saturating_add(delta).min(self.max);
        self.set(index, value);
        value
    }

    /// Takes the cell-wise maximum of `self` and `other` — the
    /// HyperLogLog-style register merge: after the merge every cell holds
    /// the larger of the two observations.
    ///
    /// # Panics
    ///
    /// Panics if lengths or widths differ.
    pub fn merge_max(&mut self, other: &CounterArray) {
        assert_eq!(
            (self.len, self.width),
            (other.len, other.width),
            "cannot merge counter arrays of different geometry"
        );
        for i in 0..self.len {
            let theirs = other.get(i);
            if theirs > self.get(i) {
                self.set(i, theirs);
            }
        }
    }

    /// Adds `other` cell-wise into `self`, saturating per cell — the merge
    /// for additive sketches (count-min rows, FlowRadar packet counters).
    ///
    /// # Panics
    ///
    /// Panics if lengths or widths differ.
    pub fn merge_add(&mut self, other: &CounterArray) {
        assert_eq!(
            (self.len, self.width),
            (other.len, other.width),
            "cannot merge counter arrays of different geometry"
        );
        for i in 0..self.len {
            let theirs = other.get(i);
            if theirs > 0 {
                self.add(i, theirs);
            }
        }
    }

    /// Number of counters currently equal to zero.
    pub fn count_zeros(&self) -> usize {
        (0..self.len).filter(|&i| self.get(i) == 0).count()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Memory footprint of the counters in bits (`len * width`, the logical
    /// footprint used by the equal-memory budget accounting).
    pub fn logical_bits(&self) -> usize {
        self.len * self.width as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_pack_and_unpack() {
        for width in [1u32, 3, 7, 8, 12, 16, 31, 32] {
            let mut c = CounterArray::new(77, width).unwrap();
            let max = c.max_value();
            for i in 0..77 {
                c.set(i, (i as u64 * 2654435761) & max);
            }
            for i in 0..77 {
                assert_eq!(
                    c.get(i),
                    (i as u64 * 2654435761) & max,
                    "width {width} cell {i}"
                );
            }
        }
    }

    #[test]
    fn neighbours_do_not_interfere() {
        let mut c = CounterArray::new(9, 7).unwrap(); // 7 bits straddles words
        c.set(4, 0x55);
        c.set(3, 0x7f);
        c.set(5, 0);
        assert_eq!(c.get(4), 0x55);
        assert_eq!(c.get(3), 0x7f);
        assert_eq!(c.get(5), 0);
    }

    #[test]
    fn straddling_word_boundary() {
        // width 12: counter 5 spans bits 60..72, crossing the word boundary.
        let mut c = CounterArray::new(12, 12).unwrap();
        c.set(5, 0xabc);
        assert_eq!(c.get(5), 0xabc);
        c.set(4, 0xfff);
        c.set(6, 0x123);
        assert_eq!(c.get(5), 0xabc);
        assert_eq!(c.get(4), 0xfff);
        assert_eq!(c.get(6), 0x123);
    }

    #[test]
    fn saturating_increment() {
        let mut c = CounterArray::new(2, 4).unwrap();
        for _ in 0..20 {
            c.increment(0);
        }
        assert_eq!(c.get(0), 15);
        assert_eq!(c.get(1), 0);
    }

    #[test]
    fn add_and_set_clamp() {
        let mut c = CounterArray::new(1, 8).unwrap();
        c.set(0, 1000);
        assert_eq!(c.get(0), 255);
        c.reset();
        assert_eq!(c.add(0, 300), 255);
    }

    #[test]
    fn count_zeros_and_logical_bits() {
        let mut c = CounterArray::new(10, 8).unwrap();
        c.set(2, 1);
        c.set(7, 9);
        assert_eq!(c.count_zeros(), 8);
        assert_eq!(c.logical_bits(), 80);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CounterArray::new(0, 8).is_err());
        assert!(CounterArray::new(8, 0).is_err());
        assert!(CounterArray::new(8, 33).is_err());
    }

    #[test]
    fn merge_max_takes_cellwise_maximum() {
        let mut a = CounterArray::new(5, 6).unwrap();
        let mut b = CounterArray::new(5, 6).unwrap();
        a.set(0, 3);
        a.set(1, 9);
        b.set(1, 4);
        b.set(2, 7);
        a.merge_max(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 7);
        assert_eq!(a.get(3), 0);
    }

    #[test]
    fn merge_add_saturates_per_cell() {
        let mut a = CounterArray::new(3, 4).unwrap();
        let mut b = CounterArray::new(3, 4).unwrap();
        a.set(0, 10);
        b.set(0, 10); // 20 saturates at 15
        b.set(1, 2);
        a.merge_add(&b);
        assert_eq!(a.get(0), 15);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(2), 0);
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn merge_of_mismatched_geometry_panics() {
        let mut a = CounterArray::new(4, 8).unwrap();
        a.merge_max(&CounterArray::new(4, 7).unwrap());
    }
}
