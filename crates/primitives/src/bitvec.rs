/// A fixed-length bit vector packed into `u64` words.
///
/// Used as the backing store of the [`crate::BloomFilter`] and anywhere a
/// dense occupancy map is needed. The length is fixed at construction so the
/// memory footprint is exactly `ceil(len / 64) * 8` bytes, which the
/// equal-memory accounting of the evaluation relies on.
///
/// # Examples
///
/// ```
/// use hashflow_primitives::BitVec;
/// let mut bv = BitVec::new(100);
/// bv.set(31);
/// assert!(bv.get(31));
/// assert!(!bv.get(32));
/// assert_eq!(bv.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` to one.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn set(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Clears bit `index` to zero.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn clear(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Bitwise-ORs `other` into `self` — the union of two occupancy maps,
    /// the merge operation for Bloom filters and linear-counting bitmaps
    /// built over the same hash functions.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "cannot union bit vectors of different lengths"
        );
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Resets every bit to zero.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Memory footprint of the backing store in bits (a multiple of 64).
    pub fn storage_bits(&self) -> usize {
        self.words.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bv = BitVec::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!bv.get(i));
            bv.set(i);
            assert!(bv.get(i));
        }
        assert_eq!(bv.count_ones(), 8);
        bv.clear(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 7);
    }

    #[test]
    fn counts_and_reset() {
        let mut bv = BitVec::new(200);
        for i in (0..200).step_by(3) {
            bv.set(i);
        }
        assert_eq!(bv.count_ones() + bv.count_zeros(), 200);
        bv.reset();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::new(10).get(10);
    }

    #[test]
    fn union_is_bitwise_or() {
        let mut a = BitVec::new(130);
        let mut b = BitVec::new(130);
        a.set(0);
        a.set(64);
        b.set(64);
        b.set(129);
        a.union_with(&b);
        assert!(a.get(0) && a.get(64) && a.get(129));
        assert_eq!(a.count_ones(), 3);
        // b is untouched.
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn union_of_mismatched_lengths_panics() {
        BitVec::new(10).union_with(&BitVec::new(11));
    }

    #[test]
    fn storage_is_word_granular() {
        assert_eq!(BitVec::new(1).storage_bits(), 64);
        assert_eq!(BitVec::new(64).storage_bits(), 64);
        assert_eq!(BitVec::new(65).storage_bits(), 128);
        assert!(BitVec::new(0).is_empty());
    }
}
