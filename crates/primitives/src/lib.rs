//! Substrate data structures the flow-measurement algorithms are built on.
//!
//! The paper's baselines depend on three classic probabilistic structures,
//! all reimplemented here from their original papers:
//!
//! * [`BloomFilter`] — FlowRadar's new-flow gate (Bloom, CACM 1970);
//! * [`CountMinSketch`] — ElasticSketch's "light part" (Cormode &
//!   Muthukrishnan, J. Algorithms 2005);
//! * [`LinearCounter`] — the cardinality estimator ElasticSketch and
//!   HashFlow use (Whang et al., TODS 1990).
//!
//! Plus two building blocks: a compact [`BitVec`] and a [`CounterArray`] of
//! configurable-width saturating counters (the 8-bit counters of
//! ElasticSketch's light part and HashFlow's ancillary table).
//!
//! # Examples
//!
//! ```
//! use hashflow_primitives::BloomFilter;
//! use hashflow_types::FlowKey;
//!
//! let mut bf = BloomFilter::new(1024, 4, 7)?;
//! let key = FlowKey::from_index(1);
//! assert!(!bf.contains(&key));
//! bf.insert(&key);
//! assert!(bf.contains(&key));
//! # Ok::<(), hashflow_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod bloom;
mod count_min;
mod counters;
mod hyperloglog;
mod linear;

pub use bitvec::BitVec;
pub use bloom::BloomFilter;
pub use count_min::CountMinSketch;
pub use counters::CounterArray;
pub use hyperloglog::HyperLogLog;
pub use linear::{linear_counting_estimate, LinearCounter};
