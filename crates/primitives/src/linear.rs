use crate::BitVec;
use hashflow_hashing::{fast_range, HashFamily, XxHash64};
use hashflow_types::FlowKey;

/// Linear-counting cardinality estimate from an occupancy observation
/// (Whang, Vander-Zanden & Taylor, TODS 1990).
///
/// Given a hash table (or bitmap) of `cells` slots of which `zero_cells` are
/// still empty after hashing every element once, the maximum-likelihood
/// estimate of the number of distinct elements is `-cells * ln(zero/cells)`.
///
/// The paper uses this twice (§IV-A): ElasticSketch estimates total flow
/// cardinality by linear counting over its count-min array, and HashFlow by
/// linear counting over its ancillary table.
///
/// Returns `f64::INFINITY` when no cell is empty (the estimator diverges) and
/// `0.0` for an empty table.
///
/// # Examples
///
/// ```
/// use hashflow_primitives::linear_counting_estimate;
/// let estimate = linear_counting_estimate(1000, 368); // ~ e^-1 empty
/// assert!((estimate - 1000.0).abs() < 10.0);
/// ```
pub fn linear_counting_estimate(cells: usize, zero_cells: usize) -> f64 {
    assert!(
        zero_cells <= cells,
        "zero cells {zero_cells} exceed table size {cells}"
    );
    if cells == 0 || zero_cells == cells {
        return 0.0;
    }
    if zero_cells == 0 {
        return f64::INFINITY;
    }
    -(cells as f64) * (zero_cells as f64 / cells as f64).ln()
}

/// A standalone linear counter: a bitmap plus one hash function.
///
/// Not used inside HashFlow itself (which piggybacks on ancillary-table
/// occupancy) but provided as the textbook reference implementation so the
/// estimator math in [`linear_counting_estimate`] can be validated end to
/// end, and as a substrate for applications that only need cardinality.
///
/// # Examples
///
/// ```
/// use hashflow_primitives::LinearCounter;
/// use hashflow_types::FlowKey;
///
/// let mut lc = LinearCounter::new(4096, 3);
/// for i in 0..1000 {
///     lc.observe(&FlowKey::from_index(i));
/// }
/// let est = lc.estimate();
/// assert!((est - 1000.0).abs() / 1000.0 < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct LinearCounter {
    bits: BitVec,
    hash: HashFamily<XxHash64>,
}

impl LinearCounter {
    /// Creates a linear counter with `cells` bitmap bits.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`.
    pub fn new(cells: usize, seed: u64) -> Self {
        assert!(cells > 0, "linear counter needs at least one cell");
        LinearCounter {
            bits: BitVec::new(cells),
            hash: HashFamily::new(1, seed ^ 0x11c0_11c0),
        }
    }

    /// Records an observation of `key`.
    pub fn observe(&mut self, key: &FlowKey) {
        let idx = fast_range(self.hash.hash(0, key), self.bits.len());
        self.bits.set(idx);
    }

    /// Current cardinality estimate.
    pub fn estimate(&self) -> f64 {
        linear_counting_estimate(self.bits.len(), self.bits.count_zeros())
    }

    /// Number of bitmap cells.
    pub fn cells(&self) -> usize {
        self.bits.len()
    }

    /// Merges `other` into `self` by bitmap union. Valid only for counters
    /// built with the same cell count and seed (same hash function); like
    /// the HyperLogLog union it then behaves exactly as if one counter had
    /// observed both streams.
    ///
    /// # Panics
    ///
    /// Panics if the cell counts differ.
    pub fn merge(&mut self, other: &LinearCounter) {
        self.bits.union_with(&other.bits);
    }

    /// Clears all observations.
    pub fn reset(&mut self) {
        self.bits.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_edges() {
        assert_eq!(linear_counting_estimate(100, 100), 0.0);
        assert_eq!(linear_counting_estimate(0, 0), 0.0);
        assert!(linear_counting_estimate(100, 0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "exceed table size")]
    fn inconsistent_observation_panics() {
        linear_counting_estimate(10, 11);
    }

    #[test]
    fn estimate_matches_closed_form() {
        // 1000 cells with 500 empty: estimate = 1000 ln 2 ~= 693.1
        let e = linear_counting_estimate(1000, 500);
        assert!((e - 693.147).abs() < 0.01);
    }

    #[test]
    fn counter_tracks_distinct_not_total() {
        let mut lc = LinearCounter::new(1 << 13, 9);
        for _ in 0..5 {
            for i in 0..2000 {
                lc.observe(&FlowKey::from_index(i));
            }
        }
        let est = lc.estimate();
        assert!(
            (est - 2000.0).abs() / 2000.0 < 0.1,
            "estimate {est} should track distinct count 2000"
        );
    }

    #[test]
    fn accuracy_improves_with_load_under_capacity() {
        // At load ~0.25 the standard error of linear counting is ~1-2 %.
        let mut lc = LinearCounter::new(40_000, 4);
        for i in 0..10_000 {
            lc.observe(&FlowKey::from_index(i));
        }
        let est = lc.estimate();
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.05,
            "estimate {est} off by more than 5%"
        );
    }

    #[test]
    fn merge_equals_single_counter_over_union() {
        let mut single = LinearCounter::new(1 << 12, 5);
        let mut a = LinearCounter::new(1 << 12, 5);
        let mut b = LinearCounter::new(1 << 12, 5);
        for i in 0..3000u64 {
            let k = FlowKey::from_index(i);
            single.observe(&k);
            if i % 2 == 0 {
                a.observe(&k);
            } else {
                b.observe(&k);
            }
        }
        a.merge(&b);
        assert_eq!(a.estimate(), single.estimate());
    }

    #[test]
    fn reset_restores_zero() {
        let mut lc = LinearCounter::new(64, 0);
        lc.observe(&FlowKey::from_index(1));
        assert!(lc.estimate() > 0.0);
        lc.reset();
        assert_eq!(lc.estimate(), 0.0);
        assert_eq!(lc.cells(), 64);
    }
}
