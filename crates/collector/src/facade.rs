//! The `Collector` facade: a registry-built monitor behind an epoch
//! rotator with export sinks — the whole pipeline in one handle.

use crate::registry::{AlgorithmKind, MonitorBuilder};
use hashflow_monitor::{
    CostSnapshot, EpochReport, EpochRotator, EpochSnapshot, FlowMonitor, MemoryBudget, RecordSink,
};
use hashflow_types::{ConfigError, FlowKey, FlowRecord, Packet};
use std::io;

/// A running collection pipeline: `monitor → rotator → sinks`.
///
/// Built by [`Collector::builder`]. Ingestion goes through the monitor's
/// batched hot path; when a packet's timestamp crosses the epoch edge
/// (or [`Collector::seal`] is called) the epoch is sealed into an
/// immutable [`EpochSnapshot`], streamed to every attached sink, and
/// retained in [`Collector::completed_epochs`], while the live side keeps
/// ingesting into fresh tables.
///
/// `Collector` itself implements [`FlowMonitor`], so anything that drives
/// a monitor — the software switch, the evaluation harness — can drive a
/// whole pipeline unchanged.
pub struct Collector {
    rotator: EpochRotator<Box<dyn FlowMonitor + Send>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("algorithm", &self.name())
            .field("epoch_len_ns", &self.rotator.epoch_len_ns())
            .field("completed", &self.rotator.completed_epochs().len())
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Starts building a pipeline around `kind`.
    pub fn builder(kind: AlgorithmKind) -> CollectorBuilder {
        CollectorBuilder {
            monitor: MonitorBuilder::new(kind),
            epoch_len_ns: u64::MAX,
            sinks: Vec::new(),
        }
    }

    /// Wraps an already-built monitor (e.g. one with a hand-tuned
    /// configuration) in the rotation + sink pipeline.
    pub fn from_monitor(monitor: Box<dyn FlowMonitor + Send>, epoch_len_ns: u64) -> Self {
        Collector {
            rotator: EpochRotator::new(monitor, epoch_len_ns),
        }
    }

    /// Attaches a sink; every epoch sealed from now on streams to it.
    pub fn add_sink(&mut self, sink: Box<dyn RecordSink + Send>) {
        self.rotator.add_sink(sink);
    }

    /// Seals the running epoch into an immutable [`EpochSnapshot`]
    /// (streaming it to the sinks) and resets the live side for the next
    /// epoch.
    pub fn seal(&mut self) -> EpochSnapshot {
        self.rotator.seal()
    }

    /// Reports of all epochs sealed so far.
    pub fn completed_epochs(&self) -> &[EpochReport] {
        self.rotator.completed_epochs()
    }

    /// Drains completed epoch reports, leaving the current epoch running.
    pub fn drain_completed(&mut self) -> Vec<EpochReport> {
        self.rotator.drain_completed()
    }

    /// The live monitor (current-epoch state).
    pub fn monitor(&self) -> &dyn FlowMonitor {
        self.rotator.inner()
    }

    /// Takes the first sink I/O error observed since the last call.
    pub fn take_sink_error(&mut self) -> Option<io::Error> {
        self.rotator.take_sink_error()
    }

    /// Ends the collection run: flushes every sink.
    ///
    /// # Errors
    ///
    /// Returns the first sink I/O error, including errors parked from
    /// earlier rotations.
    pub fn finish(&mut self) -> io::Result<()> {
        self.rotator.finish_sinks()
    }
}

impl FlowMonitor for Collector {
    fn process_packet(&mut self, packet: &Packet) {
        self.rotator.process_packet(packet);
    }

    fn process_batch(&mut self, packets: &[Packet]) {
        self.rotator.process_batch(packets);
    }

    fn flow_records(&self) -> Vec<FlowRecord> {
        self.rotator.flow_records()
    }

    fn estimate_size(&self, key: &FlowKey) -> u32 {
        self.rotator.estimate_size(key)
    }

    fn estimate_cardinality(&self) -> f64 {
        self.rotator.estimate_cardinality()
    }

    fn heavy_hitters(&self, threshold: u32) -> Vec<FlowRecord> {
        self.rotator.heavy_hitters(threshold)
    }

    fn memory_bits(&self) -> usize {
        self.rotator.memory_bits()
    }

    fn name(&self) -> &'static str {
        self.rotator.name()
    }

    fn cost(&self) -> CostSnapshot {
        self.rotator.cost()
    }

    fn reset(&mut self) {
        self.rotator.reset();
    }

    fn seal(&mut self) -> EpochSnapshot {
        Collector::seal(self)
    }
}

/// Builder for [`Collector`]: the registry's monitor knobs plus the
/// pipeline's epoch length and sinks.
pub struct CollectorBuilder {
    monitor: MonitorBuilder,
    epoch_len_ns: u64,
    sinks: Vec<Box<dyn RecordSink + Send>>,
}

impl CollectorBuilder {
    /// Sets the memory budget (required).
    #[must_use]
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.monitor = self.monitor.budget(budget);
        self
    }

    /// Sets an explicit master hash seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.monitor = self.monitor.seed(seed);
        self
    }

    /// Sets the shard count (merge-layer algorithms only).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.monitor = self.monitor.shards(shards);
        self
    }

    /// Sets NetFlow's 1-in-N sampling rate.
    #[must_use]
    pub fn sampling(mut self, n: u32) -> Self {
        self.monitor = self.monitor.sampling(n);
        self
    }

    /// Sets the epoch length in nanoseconds. The default (`u64::MAX`)
    /// never rotates on time — the paper's single-epoch mode, sealed
    /// explicitly via [`Collector::seal`].
    #[must_use]
    pub fn epoch_ns(mut self, epoch_len_ns: u64) -> Self {
        self.epoch_len_ns = epoch_len_ns;
        self
    }

    /// Attaches a sink.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn RecordSink + Send>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates every registry error ([`MonitorBuilder::build`]).
    pub fn build(self) -> Result<Collector, ConfigError> {
        let mut collector = Collector::from_monitor(self.monitor.build()?, self.epoch_len_ns);
        for sink in self.sinks {
            collector.add_sink(sink);
        }
        Ok(collector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_monitor::MemorySink;
    use hashflow_trace::{TraceGenerator, TraceProfile};

    fn budget() -> MemoryBudget {
        MemoryBudget::from_kib(128).unwrap()
    }

    #[test]
    fn pipeline_rotates_and_streams() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct Counting(Arc<AtomicUsize>);
        impl RecordSink for Counting {
            fn export_epoch(&mut self, s: &EpochSnapshot) -> io::Result<()> {
                self.0.fetch_add(s.len(), Ordering::Relaxed);
                Ok(())
            }
        }

        let exported = Arc::new(AtomicUsize::new(0));
        let trace = TraceGenerator::new(TraceProfile::Isp2, 3).generate(2_000);
        let mut collector = Collector::builder(AlgorithmKind::HashFlow)
            .budget(budget())
            .epoch_ns(500_000) // 0.5 ms: the ~1 us packet spacing spans several epochs
            .sink(Box::new(MemorySink::new()))
            .sink(Box::new(Counting(Arc::clone(&exported))))
            .build()
            .unwrap();
        collector.process_trace(trace.packets());
        collector.seal();
        assert!(collector.completed_epochs().len() >= 2);
        let retained: usize = collector
            .completed_epochs()
            .iter()
            .map(|e| e.records.len())
            .sum();
        assert_eq!(exported.load(Ordering::Relaxed), retained);
        assert!(collector.take_sink_error().is_none());
        collector.finish().unwrap();
    }

    #[test]
    fn collector_is_a_flow_monitor() {
        let trace = TraceGenerator::new(TraceProfile::Caida, 5).generate(500);
        let mut collector = Collector::builder(AlgorithmKind::FlowRadar)
            .budget(budget())
            .build()
            .unwrap();
        let monitor: &mut dyn FlowMonitor = &mut collector;
        monitor.process_trace(trace.packets());
        assert_eq!(monitor.name(), "FlowRadar");
        assert!(monitor.cost().packets > 0);
        let snapshot = monitor.seal();
        assert_eq!(snapshot.epoch(), 0);
        assert!(!snapshot.is_empty());
        assert_eq!(collector.completed_epochs().len(), 1);
    }

    #[test]
    fn builder_knobs_reach_the_registry() {
        // Sharded + seeded through the facade.
        let collector = Collector::builder(AlgorithmKind::HashFlow)
            .budget(budget())
            .seed(11)
            .shards(2)
            .build()
            .unwrap();
        assert!(collector.monitor().memory_bits() <= budget().bits());
        // Registry errors surface unchanged.
        let err = match Collector::builder(AlgorithmKind::Elastic)
            .budget(budget())
            .shards(2)
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("expected a merge-layer error"),
        };
        assert!(err.to_string().contains("merge layer"));
    }
}
