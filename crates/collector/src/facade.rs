//! The `Collector` facade: a registry-built monitor behind an epoch
//! rotator with export sinks — the whole pipeline in one handle.

use crate::registry::{AlgorithmKind, MonitorBuilder};
use hashflow_monitor::{
    BackpressurePolicy, CostSnapshot, DropStats, EpochReport, EpochRotator, EpochSnapshot,
    FlowMonitor, FlowTracer, HealthPolicy, IntrospectMetric, MemoryBudget, PipelineMetrics,
    RecordSink, SinkErrors, SinkStatus,
};
use hashflow_obs::{FlightRecorder, MetricsRegistry, MetricsSnapshot};
use hashflow_query::{QueryId, QueryMonitor, QueryPlan, QueryResult};
use hashflow_types::{ConfigError, FlowKey, FlowRecord, Packet};
use std::io;

/// A running collection pipeline: `monitor → queries → rotator → sinks`.
///
/// Built by [`Collector::builder`]. Ingestion goes through the monitor's
/// batched hot path; when a packet's timestamp crosses the epoch edge
/// (or [`Collector::seal`] is called) the epoch is sealed into an
/// immutable [`EpochSnapshot`], streamed to every attached sink, and
/// retained in [`Collector::completed_epochs`], while the live side keeps
/// ingesting into fresh tables.
///
/// Declarative telemetry queries ([`QueryPlan`]) attach to the pipeline
/// via [`CollectorBuilder::query`] or [`Collector::attach_query`]: every
/// ingested packet is evaluated incrementally, per-epoch answers are
/// banked at each rotation ([`Collector::drain_query_answers`]), and the
/// running epoch can be asked at any time
/// ([`Collector::query_answer`]).
///
/// `Collector` itself implements [`FlowMonitor`], so anything that drives
/// a monitor — the software switch, the evaluation harness — can drive a
/// whole pipeline unchanged.
pub struct Collector {
    rotator: EpochRotator<QueryMonitor<Box<dyn FlowMonitor + Send>>>,
    metrics: Option<MetricsRegistry>,
    /// Set by [`Collector::finish`]; the `Drop` impl flushes sinks
    /// best-effort when the pipeline is dropped without finishing.
    finished: bool,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("algorithm", &self.name())
            .field("epoch_len_ns", &self.rotator.epoch_len_ns())
            .field("completed", &self.rotator.completed_epochs().len())
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Starts building a pipeline around `kind`.
    pub fn builder(kind: AlgorithmKind) -> CollectorBuilder {
        CollectorBuilder {
            monitor: MonitorBuilder::new(kind),
            epoch_len_ns: u64::MAX,
            sinks: Vec::new(),
            queries: Vec::new(),
            metrics: None,
            answer_limit: None,
            retention: None,
            sink_health: None,
            recorder: None,
            tracer: None,
        }
    }

    /// Wraps an already-built monitor (e.g. one with a hand-tuned
    /// configuration) in the rotation + sink pipeline.
    pub fn from_monitor(monitor: Box<dyn FlowMonitor + Send>, epoch_len_ns: u64) -> Self {
        Collector {
            rotator: EpochRotator::new(QueryMonitor::new(monitor), epoch_len_ns),
            metrics: None,
            finished: false,
        }
    }

    /// Attaches a runtime-metrics registry to every layer of the running
    /// pipeline: the rotation layer registers its ingest/seal/sink
    /// counters ([`PipelineMetrics`]), the query layer its per-plan
    /// evaluation counters and answer-bank drop accounting. (The monitor
    /// layer registers at construction — see
    /// [`CollectorBuilder::with_metrics`], which wires all three at
    /// build time.)
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.rotator.inner_mut().set_metrics(registry);
        self.rotator
            .set_metrics(PipelineMetrics::register(registry));
        // Sealed introspection exports as gauges at every rotation.
        self.rotator.set_introspection_registry(registry.clone());
        self.metrics = Some(registry.clone());
    }

    /// Attaches a flight recorder to the rotation and sink layers: epoch
    /// seals, rotation gaps and sink retry/degrade/quarantine/recover
    /// transitions record structured events, and quarantine entry dumps
    /// the recent window (see [`FlightRecorder`]). The monitor layer's
    /// recorder (shard panics, shed batches) attaches at build time via
    /// [`CollectorBuilder::with_recorder`].
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.rotator.set_recorder(recorder);
    }

    /// The flight recorder attached to the rotation layer, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.rotator.recorder()
    }

    /// Attaches a sampled flow tracer to the rotation layer: sampled
    /// flows record `epoch_seal` and `export` spans at every rotation.
    /// Monitor-layer spans (placement stages, dispatch) attach at build
    /// time via [`CollectorBuilder::with_tracer`].
    pub fn set_tracer(&mut self, tracer: FlowTracer) {
        self.rotator.set_tracer(tracer);
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Flushes locally accumulated counts and snapshots the attached
    /// registry — the single source every end-of-run report and export
    /// renders from, so printed and exported numbers cannot disagree.
    /// Returns `None` when no registry is attached.
    pub fn metrics_snapshot(&mut self) -> Option<MetricsSnapshot> {
        self.rotator.flush_metrics();
        self.metrics.as_ref().map(MetricsRegistry::snapshot)
    }

    /// Attaches a sink; every epoch sealed from now on streams to it.
    pub fn add_sink(&mut self, sink: Box<dyn RecordSink + Send>) {
        self.rotator.add_sink(sink);
    }

    /// Attaches a query plan to the pipeline; it evaluates incrementally
    /// from this point on (packets already ingested this epoch are not
    /// replayed). Returns the id addressing the plan's answers.
    pub fn attach_query(&mut self, plan: QueryPlan) -> QueryId {
        self.rotator.inner_mut().attach(plan)
    }

    /// Number of attached query plans.
    pub fn query_count(&self) -> usize {
        self.rotator.inner().query_count()
    }

    /// The running epoch's streaming answer for one attached plan.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Self::attach_query`] /
    /// [`CollectorBuilder::query`].
    pub fn query_answer(&self, id: QueryId) -> QueryResult {
        self.rotator.inner().answer(id)
    }

    /// The running epoch's streaming answers of every attached plan, in
    /// attach order.
    pub fn query_answers(&self) -> Vec<QueryResult> {
        self.rotator.inner().answer_all()
    }

    /// Drains the per-epoch query answers banked at each rotation
    /// (oldest epoch first; inner vectors follow attach order), leaving
    /// the running epoch's state untouched.
    pub fn drain_query_answers(&mut self) -> Vec<Vec<QueryResult>> {
        self.rotator.inner_mut().drain_sealed_answers()
    }

    /// Seals the running epoch into an immutable [`EpochSnapshot`]
    /// (streaming it to the sinks) and resets the live side for the next
    /// epoch.
    pub fn seal(&mut self) -> EpochSnapshot {
        self.rotator.seal()
    }

    /// Reports of all epochs sealed so far.
    pub fn completed_epochs(&self) -> &[EpochReport] {
        self.rotator.completed_epochs()
    }

    /// Drains completed epoch reports, leaving the current epoch running.
    pub fn drain_completed(&mut self) -> Vec<EpochReport> {
        self.rotator.drain_completed()
    }

    /// The live monitor (current-epoch state), beneath the query layer.
    pub fn monitor(&self) -> &dyn FlowMonitor {
        self.rotator.inner().inner()
    }

    /// Takes the **oldest** parked sink I/O error observed since the
    /// last call.
    #[deprecated(
        since = "0.1.0",
        note = "inspect sink_health() for per-sink state and counts; \
                finish() returns every parked error"
    )]
    pub fn take_sink_error(&mut self) -> Option<io::Error> {
        #[allow(deprecated)]
        self.rotator.take_sink_error()
    }

    /// Per-sink health: state-machine position (healthy / degraded /
    /// quarantined), failure counts, epochs skipped while quarantined and
    /// the most recent error. Indexed in attach order.
    pub fn sink_health(&self) -> Vec<SinkStatus> {
        self.rotator.sink_health()
    }

    /// Sets the failure thresholds of the sink health state machine (see
    /// [`HealthPolicy`]).
    pub fn set_sink_health_policy(&mut self, policy: HealthPolicy) {
        self.rotator.set_sink_health_policy(policy);
    }

    /// Bounds the completed-epoch store to `max_epochs` reports, shed
    /// under `policy` (`Block` degrades to `DropNewest`, counted — the
    /// seal path must not stall). Sheds are accounted in
    /// [`Self::retention_drop_stats`].
    pub fn set_retention(&mut self, max_epochs: usize, policy: BackpressurePolicy) {
        self.rotator.set_retention(max_epochs, policy);
    }

    /// The completed-epoch retention ledger (offered / dropped /
    /// delivered, conserved by construction).
    pub fn retention_drop_stats(&self) -> DropStats {
        self.rotator.retention_drop_stats()
    }

    /// The query answer bank's drop ledger (see
    /// [`CollectorBuilder::answer_limit`]).
    pub fn answer_drop_stats(&self) -> DropStats {
        self.rotator.inner().answer_drop_stats().clone()
    }

    /// Ends the collection run: flushes every sink (quarantined ones
    /// included — a final flush is the last chance to drain buffers).
    ///
    /// # Errors
    ///
    /// Returns **every** sink error parked from earlier rotations plus
    /// any flush failures, as one [`SinkErrors`] bundle (which converts
    /// into `io::Error` via `?` where an `io::Result` is expected).
    pub fn finish(&mut self) -> Result<(), SinkErrors> {
        self.finished = true;
        self.rotator.finish_sinks()
    }
}

impl Drop for Collector {
    /// Best-effort sink flush for pipelines dropped without
    /// [`Collector::finish`]: buffered exports are not silently lost.
    /// Errors are discarded — panicking in `Drop` is never acceptable —
    /// so call `finish()` explicitly when you need to observe them.
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.rotator.finish_sinks();
        }
    }
}

impl FlowMonitor for Collector {
    fn process_packet(&mut self, packet: &Packet) {
        self.rotator.process_packet(packet);
    }

    fn process_batch(&mut self, packets: &[Packet]) {
        self.rotator.process_batch(packets);
    }

    fn flow_records(&self) -> Vec<FlowRecord> {
        self.rotator.flow_records()
    }

    fn estimate_size(&self, key: &FlowKey) -> u32 {
        self.rotator.estimate_size(key)
    }

    fn estimate_cardinality(&self) -> f64 {
        self.rotator.estimate_cardinality()
    }

    fn heavy_hitters(&self, threshold: u32) -> Vec<FlowRecord> {
        self.rotator.heavy_hitters(threshold)
    }

    fn memory_bits(&self) -> usize {
        self.rotator.memory_bits()
    }

    fn name(&self) -> &'static str {
        self.rotator.name()
    }

    fn cost(&self) -> CostSnapshot {
        self.rotator.cost()
    }

    /// Degradation report of the wrapped pipeline — for a sharded build
    /// this surfaces any lane whose worker died mid-epoch, which is what
    /// a service health endpoint wants to know before trusting the
    /// current epoch's numbers.
    fn faults(&self) -> Vec<String> {
        self.rotator.faults()
    }

    /// Live-state introspection of the wrapped monitor (the sealed
    /// per-epoch report travels in each [`EpochSnapshot`]).
    fn introspection(&self) -> Vec<IntrospectMetric> {
        self.rotator.introspection()
    }

    fn reset(&mut self) {
        self.rotator.reset();
    }

    fn seal(&mut self) -> EpochSnapshot {
        Collector::seal(self)
    }
}

/// Builder for [`Collector`]: the registry's monitor knobs plus the
/// pipeline's epoch length, sinks and query plans.
pub struct CollectorBuilder {
    monitor: MonitorBuilder,
    epoch_len_ns: u64,
    sinks: Vec<Box<dyn RecordSink + Send>>,
    queries: Vec<QueryPlan>,
    metrics: Option<MetricsRegistry>,
    answer_limit: Option<(usize, BackpressurePolicy)>,
    retention: Option<(usize, BackpressurePolicy)>,
    sink_health: Option<HealthPolicy>,
    recorder: Option<FlightRecorder>,
    tracer: Option<FlowTracer>,
}

impl CollectorBuilder {
    /// Sets the memory budget (required).
    #[must_use]
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.monitor = self.monitor.budget(budget);
        self
    }

    /// Sets an explicit master hash seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.monitor = self.monitor.seed(seed);
        self
    }

    /// Sets the shard count (merge-layer algorithms only).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.monitor = self.monitor.shards(shards);
        self
    }

    /// Sets NetFlow's 1-in-N sampling rate.
    #[must_use]
    pub fn sampling(mut self, n: u32) -> Self {
        self.monitor = self.monitor.sampling(n);
        self
    }

    /// Sets the epoch length in nanoseconds. The default (`u64::MAX`)
    /// never rotates on time — the paper's single-epoch mode, sealed
    /// explicitly via [`Collector::seal`].
    #[must_use]
    pub fn epoch_ns(mut self, epoch_len_ns: u64) -> Self {
        self.epoch_len_ns = epoch_len_ns;
        self
    }

    /// Attaches a sink.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn RecordSink + Send>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attaches a query plan (ids follow attach order, starting at 0).
    #[must_use]
    pub fn query(mut self, plan: QueryPlan) -> Self {
        self.queries.push(plan);
        self
    }

    /// Declares that records-derived queries (flow report, heavy
    /// hitters, `top_k`) will be run, rejecting estimate-only sketches
    /// at build time ([`MonitorBuilder::require_records`]).
    #[must_use]
    pub fn require_records(mut self) -> Self {
        self.monitor = self.monitor.require_records();
        self
    }

    /// Attaches a runtime-metrics registry; every pipeline layer
    /// (monitor shards, query plans, rotation, sinks) registers into it
    /// at build time and [`Collector::metrics_snapshot`] exposes the
    /// combined state.
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Bounds the banked query answers to `max_epochs` between drains,
    /// shed under `policy` (see [`QueryMonitor::with_answer_policy`]).
    #[must_use]
    pub fn answer_limit(mut self, max_epochs: usize, policy: BackpressurePolicy) -> Self {
        self.answer_limit = Some((max_epochs, policy));
        self
    }

    /// Bounds the completed-epoch store to `max_epochs` reports, shed
    /// under `policy` (see [`Collector::set_retention`]).
    #[must_use]
    pub fn retention(mut self, max_epochs: usize, policy: BackpressurePolicy) -> Self {
        self.retention = Some((max_epochs, policy));
        self
    }

    /// Sets the sink health-state-machine thresholds (see
    /// [`HealthPolicy`]).
    #[must_use]
    pub fn sink_health_policy(mut self, policy: HealthPolicy) -> Self {
        self.sink_health = Some(policy);
        self
    }

    /// Attaches a flight recorder to **every** pipeline layer: the
    /// monitor layer records shard panics and shed batches (with an
    /// automatic window dump on panic), the rotation layer records epoch
    /// seals and rotation gaps, and the sink layer records its
    /// retry/degrade/quarantine/recover transitions (quarantine entry
    /// also dumps).
    #[must_use]
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a sampled flow tracer to every pipeline layer: sampled
    /// flows record placement-stage spans in the monitor (HashFlow),
    /// `dispatch` spans in the sharded merge layer, and
    /// `epoch_seal`/`export` spans at rotation.
    #[must_use]
    pub fn with_tracer(mut self, tracer: FlowTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates every registry error ([`MonitorBuilder::build`]).
    pub fn build(self) -> Result<Collector, ConfigError> {
        let mut monitor = self.monitor;
        if let Some(registry) = &self.metrics {
            monitor = monitor.metrics(registry.clone());
        }
        if let Some(tracer) = &self.tracer {
            monitor = monitor.tracer(tracer.clone());
        }
        if let Some(recorder) = &self.recorder {
            monitor = monitor.recorder(recorder.clone());
        }
        let mut collector = Collector::from_monitor(monitor.build()?, self.epoch_len_ns);
        if let Some(registry) = &self.metrics {
            collector.set_metrics(registry);
        }
        if let Some(recorder) = self.recorder {
            collector.set_recorder(recorder);
        }
        if let Some(tracer) = self.tracer {
            collector.set_tracer(tracer);
        }
        if let Some((max_epochs, policy)) = self.answer_limit {
            collector
                .rotator
                .inner_mut()
                .set_answer_limit(max_epochs, policy);
        }
        if let Some((max_epochs, policy)) = self.retention {
            collector.set_retention(max_epochs, policy);
        }
        if let Some(policy) = self.sink_health {
            collector.set_sink_health_policy(policy);
        }
        for sink in self.sinks {
            collector.add_sink(sink);
        }
        for plan in self.queries {
            collector.attach_query(plan);
        }
        Ok(collector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_monitor::MemorySink;
    use hashflow_trace::{TraceGenerator, TraceProfile};

    fn budget() -> MemoryBudget {
        MemoryBudget::from_kib(128).unwrap()
    }

    #[test]
    fn pipeline_rotates_and_streams() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct Counting(Arc<AtomicUsize>);
        impl RecordSink for Counting {
            fn export_epoch(&mut self, s: &EpochSnapshot) -> io::Result<()> {
                self.0.fetch_add(s.len(), Ordering::Relaxed);
                Ok(())
            }
        }

        let exported = Arc::new(AtomicUsize::new(0));
        let trace = TraceGenerator::new(TraceProfile::Isp2, 3).generate(2_000);
        let mut collector = Collector::builder(AlgorithmKind::HashFlow)
            .budget(budget())
            .epoch_ns(500_000) // 0.5 ms: the ~1 us packet spacing spans several epochs
            .sink(Box::new(MemorySink::new()))
            .sink(Box::new(Counting(Arc::clone(&exported))))
            .build()
            .unwrap();
        collector.process_trace(trace.packets());
        collector.seal();
        assert!(collector.completed_epochs().len() >= 2);
        let retained: usize = collector
            .completed_epochs()
            .iter()
            .map(|e| e.records.len())
            .sum();
        assert_eq!(exported.load(Ordering::Relaxed), retained);
        assert!(collector.sink_health().iter().all(|s| s.total_errors == 0));
        collector.finish().unwrap();
    }

    #[test]
    fn sink_faults_park_in_the_health_machine_and_finish_reports_all() {
        use hashflow_monitor::SinkHealth;
        use hashflow_types::{FlowKey, Packet};

        struct Broken;
        impl RecordSink for Broken {
            fn export_epoch(&mut self, _s: &EpochSnapshot) -> io::Result<()> {
                Err(io::Error::other("export target down"))
            }
        }

        let mut collector = Collector::builder(AlgorithmKind::HashFlow)
            .budget(budget())
            .sink(Box::new(Broken))
            .sink_health_policy(HealthPolicy {
                quarantine_after: 2,
                probe_interval: 4,
            })
            .retention(1, BackpressurePolicy::DropOldest)
            .answer_limit(1, BackpressurePolicy::DropOldest)
            .query("map src | distinct dst | reduce count".parse().unwrap())
            .build()
            .unwrap();
        let key = FlowKey::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 1, 80, 6);
        for epoch in 0..3u64 {
            collector.process_packet(&Packet::new(key, epoch * 1_000, 64));
            collector.seal();
        }
        // Two consecutive failures quarantined the sink; the third seal
        // was skipped past it (counted, not exported).
        let health = collector.sink_health();
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].health, SinkHealth::Quarantined);
        assert_eq!(health[0].total_errors, 2);
        assert_eq!(health[0].skipped_epochs, 1);
        // The retention window slid: one report kept, two shed, ledger
        // conserved.
        assert_eq!(collector.completed_epochs().len(), 1);
        let retention = collector.retention_drop_stats();
        assert_eq!(retention.offered_epochs(), 3);
        assert_eq!(retention.dropped_epochs(), 2);
        // The answer bank slid the same way.
        assert_eq!(collector.drain_query_answers().len(), 1);
        // finish() reports every parked error, not just the first.
        let errors = collector.finish().unwrap_err();
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn dropping_an_unfinished_collector_flushes_sinks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct CountingFinish(Arc<AtomicUsize>);
        impl RecordSink for CountingFinish {
            fn export_epoch(&mut self, _s: &EpochSnapshot) -> io::Result<()> {
                Ok(())
            }
            fn finish(&mut self) -> io::Result<()> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }

        let build = |flushes: &Arc<AtomicUsize>| {
            Collector::builder(AlgorithmKind::HashFlow)
                .budget(budget())
                .sink(Box::new(CountingFinish(Arc::clone(flushes))))
                .build()
                .unwrap()
        };
        let flushes = Arc::new(AtomicUsize::new(0));
        drop(build(&flushes)); // dropped without finish()
        assert_eq!(flushes.load(Ordering::Relaxed), 1, "Drop flushes");
        let flushes = Arc::new(AtomicUsize::new(0));
        let mut finished = build(&flushes);
        finished.finish().unwrap();
        drop(finished);
        assert_eq!(
            flushes.load(Ordering::Relaxed),
            1,
            "an explicit finish() is not double-flushed by Drop"
        );
    }

    #[test]
    fn collector_is_a_flow_monitor() {
        let trace = TraceGenerator::new(TraceProfile::Caida, 5).generate(500);
        let mut collector = Collector::builder(AlgorithmKind::FlowRadar)
            .budget(budget())
            .build()
            .unwrap();
        let monitor: &mut dyn FlowMonitor = &mut collector;
        monitor.process_trace(trace.packets());
        assert_eq!(monitor.name(), "FlowRadar");
        assert!(monitor.cost().packets > 0);
        let snapshot = monitor.seal();
        assert_eq!(snapshot.epoch(), 0);
        assert!(!snapshot.is_empty());
        assert_eq!(collector.completed_epochs().len(), 1);
    }

    #[test]
    fn queries_ride_the_pipeline_across_epochs() {
        use hashflow_types::{FlowKey, Packet};

        // Two epochs, 1 ms apart; one source fans out to 5 destinations
        // in epoch 0 and to 2 in epoch 1.
        let fanout: QueryPlan = "map src | distinct dst | reduce count"
            .parse()
            .expect("valid plan");
        let mut collector = Collector::builder(AlgorithmKind::HashFlow)
            .budget(budget())
            .epoch_ns(1_000_000)
            .query(fanout.clone())
            .build()
            .unwrap();
        assert_eq!(collector.query_count(), 1);
        let key = |d: u32| FlowKey::new([10, 0, 0, 1].into(), d.into(), 1, 80, 6);
        for d in 0..5u32 {
            collector.process_packet(&Packet::new(key(d), 10, 64));
        }
        // Mid-epoch, the running answer is live.
        assert_eq!(collector.query_answer(0).rows()[0].value, 5);
        for d in 0..2u32 {
            collector.process_packet(&Packet::new(key(d), 2_000_000, 64));
        }
        collector.seal();
        let banked = collector.drain_query_answers();
        assert_eq!(banked.len(), 2, "one answer set per sealed epoch");
        assert_eq!(banked[0][0].rows()[0].value, 5);
        assert_eq!(banked[1][0].rows()[0].value, 2);
        assert!(collector.query_answers()[0].is_empty(), "fresh epoch");
        // Late attachment starts counting from now.
        let second = collector.attach_query(fanout);
        assert_eq!(second, 1);
        collector.process_packet(&Packet::new(key(9), 2_100_000, 64));
        assert_eq!(collector.query_answer(second).rows()[0].value, 1);
    }

    #[test]
    fn metrics_cover_every_pipeline_layer() {
        use hashflow_obs::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let trace = TraceGenerator::new(TraceProfile::Isp2, 3).generate(2_000);
        let mut collector = Collector::builder(AlgorithmKind::HashFlow)
            .budget(budget())
            .shards(2)
            .epoch_ns(500_000)
            .query("map src | distinct dst | reduce count".parse().unwrap())
            .sink(Box::new(MemorySink::new()))
            .with_metrics(registry.clone())
            .build()
            .unwrap();
        collector.process_trace(trace.packets());
        collector.seal();
        let packets = trace.packets().len() as u64;
        let snap = collector.metrics_snapshot().expect("registry attached");
        // Rotation layer: every packet counted, epochs sealed.
        assert_eq!(
            snap.counter("hashflow_ingest_packets_total", &[]),
            Some(packets)
        );
        let sealed = snap.counter("hashflow_epochs_sealed_total", &[]).unwrap();
        assert_eq!(sealed, collector.completed_epochs().len() as u64);
        assert!(sealed >= 2);
        // Query layer: the plan evaluated every packet.
        assert_eq!(
            snap.counter_sum("hashflow_query_eval_packets_total"),
            packets
        );
        // Monitor layer: the sharded merge layer split the same packets.
        assert_eq!(snap.counter_sum("hashflow_shard_packets_total"), packets);
        // No sink trouble on the happy path.
        assert_eq!(snap.counter("hashflow_sink_errors_total", &[]), Some(0));
        assert!(collector.metrics().is_some());
    }

    #[test]
    fn require_records_gate_reaches_the_builder() {
        let err = match Collector::builder(AlgorithmKind::CountMin)
            .budget(budget())
            .require_records()
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("estimate-only kind must be rejected"),
        };
        assert!(err.to_string().contains("estimate-only"), "{err}");
    }

    #[test]
    fn builder_knobs_reach_the_registry() {
        // Sharded + seeded through the facade.
        let collector = Collector::builder(AlgorithmKind::HashFlow)
            .budget(budget())
            .seed(11)
            .shards(2)
            .build()
            .unwrap();
        assert!(collector.monitor().memory_bits() <= budget().bits());
        // Registry errors surface unchanged.
        let err = match Collector::builder(AlgorithmKind::Elastic)
            .budget(budget())
            .shards(2)
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("expected a merge-layer error"),
        };
        assert!(err.to_string().contains("merge layer"));
    }
}
