//! The collector pipeline facade: one construction path and one
//! operational loop for every flow monitor in the workspace.
//!
//! The paper's evaluation is single-epoch and offline; a deployed
//! collector is neither. This crate assembles the workspace's pieces into
//! the pipeline a deployment actually runs:
//!
//! ```text
//! source ──> collector (monitor / shards) ──> rotator (sealed epochs) ──> sinks
//!            MonitorBuilder                   EpochRotator                RecordSink
//! ```
//!
//! * [`AlgorithmKind`] + [`MonitorBuilder`] form the **algorithm
//!   registry**: the only place in the workspace that maps an algorithm
//!   name/config plus a [`MemoryBudget`] (and an optional shard count)
//!   onto a constructed monitor. The CLI, the experiment harness, the
//!   benches and the software switch all build monitors here — there is
//!   no other string→constructor path to drift out of sync.
//! * [`Collector`] is the operational loop: a registry-built monitor
//!   behind an [`EpochRotator`](hashflow_monitor::EpochRotator), with
//!   [`RecordSink`]s attached, ingesting via the batched hot path while
//!   sealed epochs stream downstream. Declarative telemetry queries
//!   ([`QueryPlan`], from the `hashflow-query` crate) attach via
//!   [`CollectorBuilder::query`] and evaluate incrementally alongside
//!   the monitor, banking per-epoch answers at every rotation.
//!
//! # Examples
//!
//! ```
//! use hashflow_collector::{AlgorithmKind, Collector};
//! use hashflow_monitor::{FlowMonitor, MemoryBudget, MemorySink};
//! use hashflow_types::{FlowKey, Packet};
//!
//! let mut collector = Collector::builder(AlgorithmKind::HashFlow)
//!     .budget(MemoryBudget::from_kib(64)?)
//!     .epoch_ns(1_000_000) // 1 ms epochs
//!     .sink(Box::new(MemorySink::new()))
//!     .build()?;
//! for t in 0..3_000u64 {
//!     collector.process_packet(&Packet::new(FlowKey::from_index(t % 50), t * 1_000, 64));
//! }
//! let tail = collector.seal(); // flush the running epoch
//! assert!(collector.completed_epochs().len() >= 3);
//! assert_eq!(tail.epoch(), collector.completed_epochs().len() as u64 - 1);
//! collector.finish()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod facade;
mod registry;

pub use facade::{Collector, CollectorBuilder};
pub use registry::{AlgorithmKind, MonitorBuilder};

// Re-exported so registry users name budgets, sinks, query plans and
// metrics registries without a direct hashflow-monitor /
// hashflow-query / hashflow-obs dependency.
pub use hashflow_monitor::{
    EpochSnapshot, FlowMonitor, JsonLinesSink, MemoryBudget, MemorySink, RecordSink,
};
pub use hashflow_obs::{MetricsRegistry, MetricsSnapshot};
pub use hashflow_query::{QueryId, QueryPlan, QueryResult};
pub use netflow_export::NetFlowV5Sink;
