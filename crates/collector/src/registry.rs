//! The algorithm registry: every way the workspace turns an algorithm
//! name or kind plus a [`MemoryBudget`] into a running monitor.

use elastic_sketch::ElasticSketch;
use flowradar::FlowRadar;
use hashflow_core::{HashFlow, HashFlowConfig};
use hashflow_monitor::{FlowMonitor, FlowTracer, MemoryBudget, MergeableMonitor};
use hashflow_obs::{FlightRecorder, MetricsRegistry};
use hashflow_shard::ShardedMonitor;
use hashflow_sketches::{BeauCoupMonitor, CountMinMonitor, ExactBaselineMonitor, FcmMonitor};
use hashflow_types::ConfigError;
use hashpipe::HashPipe;
use sampled_netflow::SampledNetFlow;

/// The flow-measurement algorithms the workspace implements.
///
/// This enum is the registry's key: adding an algorithm means adding a
/// variant here and teaching [`MonitorBuilder::build`] to construct it —
/// every consumer (CLI, experiments, benches, switch) picks it up from
/// there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// The paper's algorithm (pipelined main table + ancillary table).
    HashFlow,
    /// HashPipe baseline (SOSR'17).
    HashPipe,
    /// ElasticSketch baseline (SIGCOMM'18).
    Elastic,
    /// FlowRadar baseline (NSDI'16).
    FlowRadar,
    /// Sampled NetFlow reference.
    NetFlow,
    /// Count-Min sketch baseline (estimate-only).
    CountMin,
    /// FCM two-layer escalating-counter sketch (SIGCOMM'21,
    /// estimate-only).
    Fcm,
    /// BeauCoup coupon-collector counting (SIGCOMM'20).
    BeauCoup,
    /// Exact hash-map baseline (ground truth under the shared memory
    /// accounting).
    Exact,
}

impl AlgorithmKind {
    /// Every registered algorithm: the paper's comparison order first,
    /// then the extended sketch zoo.
    pub const ALL: [AlgorithmKind; 9] = [
        AlgorithmKind::HashFlow,
        AlgorithmKind::HashPipe,
        AlgorithmKind::Elastic,
        AlgorithmKind::FlowRadar,
        AlgorithmKind::NetFlow,
        AlgorithmKind::CountMin,
        AlgorithmKind::Fcm,
        AlgorithmKind::BeauCoup,
        AlgorithmKind::Exact,
    ];

    /// The four equal-memory comparison algorithms of §IV (NetFlow is the
    /// sampled reference, evaluated separately in the paper).
    pub const COMPARISON: [AlgorithmKind; 4] = [
        AlgorithmKind::HashFlow,
        AlgorithmKind::HashPipe,
        AlgorithmKind::Elastic,
        AlgorithmKind::FlowRadar,
    ];

    /// Canonical lower-case name, as accepted by [`Self::parse`] and the
    /// CLI `--algorithm` flag.
    pub const fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::HashFlow => "hashflow",
            AlgorithmKind::HashPipe => "hashpipe",
            AlgorithmKind::Elastic => "elastic",
            AlgorithmKind::FlowRadar => "flowradar",
            AlgorithmKind::NetFlow => "netflow",
            AlgorithmKind::CountMin => "countmin",
            AlgorithmKind::Fcm => "fcm",
            AlgorithmKind::BeauCoup => "beaucoup",
            AlgorithmKind::Exact => "exact",
        }
    }

    /// Resolves a user-supplied name (case-insensitive; accepts the
    /// aliases `elasticsketch` and `sampled`).
    ///
    /// # Errors
    ///
    /// Unknown names error with the full list of valid algorithms, so a
    /// typo on any surface (CLI flag, config file, experiment spec) is
    /// self-explaining.
    pub fn parse(name: &str) -> Result<Self, ConfigError> {
        match name.to_ascii_lowercase().as_str() {
            "hashflow" => Ok(AlgorithmKind::HashFlow),
            "hashpipe" => Ok(AlgorithmKind::HashPipe),
            "elastic" | "elasticsketch" => Ok(AlgorithmKind::Elastic),
            "flowradar" => Ok(AlgorithmKind::FlowRadar),
            "netflow" | "sampled" => Ok(AlgorithmKind::NetFlow),
            "countmin" | "cm" => Ok(AlgorithmKind::CountMin),
            "fcm" => Ok(AlgorithmKind::Fcm),
            "beaucoup" => Ok(AlgorithmKind::BeauCoup),
            "exact" | "baseline" => Ok(AlgorithmKind::Exact),
            other => Err(ConfigError::new(format!(
                "unknown algorithm '{other}'; valid algorithms: {}",
                Self::valid_names()
            ))),
        }
    }

    /// The canonical names of all registered algorithms, comma-separated
    /// (the list [`Self::parse`] errors with).
    pub fn valid_names() -> String {
        Self::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Whether the algorithm implements the merge layer
    /// ([`MergeableMonitor`]) and can therefore run sharded.
    pub const fn supports_sharding(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::HashFlow
                | AlgorithmKind::FlowRadar
                | AlgorithmKind::NetFlow
                | AlgorithmKind::CountMin
                | AlgorithmKind::Fcm
                | AlgorithmKind::BeauCoup
                | AlgorithmKind::Exact
        )
    }

    /// Whether the algorithm retains flow keys and can therefore answer
    /// the records-derived applications (flow report, heavy hitters,
    /// top-k). The estimate-only sketches answer point size and
    /// cardinality queries but report an empty record set by design;
    /// [`MonitorBuilder::require_records`] turns that capability gap
    /// into a typed construction error instead of a silently empty
    /// snapshot.
    pub const fn supports_records(&self) -> bool {
        !matches!(self, AlgorithmKind::CountMin | AlgorithmKind::Fcm)
    }

    /// The canonical names of the merge-layer algorithms, comma-separated
    /// (the list the sharding rejection errors with).
    fn sharded_names() -> String {
        Self::ALL
            .iter()
            .filter(|k| k.supports_sharding())
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AlgorithmKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Builds any registered monitor from a memory budget — the single
/// construction path of the workspace.
///
/// Optional knobs: an explicit hash `seed` (experiments re-derive
/// monitors per trial; omitting it keeps each algorithm's stable default
/// seeds), a `shards` count (> 1 wraps the monitor in a
/// [`ShardedMonitor`] with the budget split equally, for the merge-layer
/// algorithms), and the NetFlow `sampling` rate.
///
/// # Examples
///
/// ```
/// use hashflow_collector::{AlgorithmKind, MonitorBuilder};
/// use hashflow_monitor::MemoryBudget;
///
/// let budget = MemoryBudget::from_kib(256)?;
/// // Equal-memory comparison set, seeded per trial:
/// for kind in AlgorithmKind::COMPARISON {
///     let monitor = MonitorBuilder::new(kind).budget(budget).seed(42).build()?;
///     assert!(monitor.memory_bits() <= budget.bits());
/// }
/// // Sharded ingestion at the same total budget:
/// let sharded = MonitorBuilder::new(AlgorithmKind::HashFlow)
///     .budget(budget)
///     .shards(4)
///     .build()?;
/// assert_eq!(sharded.name(), "HashFlow");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MonitorBuilder {
    kind: AlgorithmKind,
    budget: Option<MemoryBudget>,
    seed: Option<u64>,
    shards: usize,
    sampling_n: u32,
    require_records: bool,
    metrics: Option<MetricsRegistry>,
    tracer: Option<FlowTracer>,
    recorder: Option<FlightRecorder>,
}

impl MonitorBuilder {
    /// Starts a builder for `kind`.
    pub fn new(kind: AlgorithmKind) -> Self {
        MonitorBuilder {
            kind,
            budget: None,
            seed: None,
            shards: 1,
            sampling_n: 1,
            require_records: false,
            metrics: None,
            tracer: None,
            recorder: None,
        }
    }

    /// Starts a builder from an algorithm name ([`AlgorithmKind::parse`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for unknown names, listing the valid
    /// algorithms.
    pub fn named(name: &str) -> Result<Self, ConfigError> {
        Ok(Self::new(AlgorithmKind::parse(name)?))
    }

    /// The algorithm this builder constructs.
    pub const fn kind(&self) -> AlgorithmKind {
        self.kind
    }

    /// Sets the memory budget (required).
    #[must_use]
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets an explicit master hash seed. Without it each algorithm keeps
    /// its stable default seeds (reproducible across runs).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the shard count. `1` (the default) builds the bare monitor;
    /// `> 1` wraps it in a [`ShardedMonitor`] with the budget split into
    /// equal per-shard budgets summing to at most the total.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets NetFlow's 1-in-N packet sampling rate (ignored by the other
    /// algorithms; default 1, i.e. unsampled).
    #[must_use]
    pub fn sampling(mut self, n: u32) -> Self {
        self.sampling_n = n;
        self
    }

    /// Declares that the caller will run records-derived queries (flow
    /// report, heavy hitters, `top_k`). [`Self::build`] then rejects the
    /// estimate-only sketches ([`AlgorithmKind::supports_records`] is
    /// `false`) with a typed [`ConfigError`] at construction time,
    /// instead of letting the query surface answer an empty snapshot.
    #[must_use]
    pub fn require_records(mut self) -> Self {
        self.require_records = true;
        self
    }

    /// Attaches a runtime-metrics registry. Monitors with their own
    /// telemetry (currently the sharded merge layer: per-shard packet
    /// counters, queue-depth gauges, dispatch/merge/seal histograms)
    /// register into it at construction; bare single-instance monitors
    /// are unaffected — pipeline-level counters live in the rotation
    /// layer ([`hashflow_monitor::PipelineMetrics`]).
    #[must_use]
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attaches a sampled flow tracer. Monitors that emit per-stage
    /// spans (HashFlow's placement stages, the sharded dispatcher) pick
    /// it up at construction; the rest ignore it.
    #[must_use]
    pub fn tracer(mut self, tracer: FlowTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a flight recorder. The sharded merge layer records shard
    /// panics (with an automatic window dump) and shed batches into it;
    /// bare single-instance monitors are unaffected.
    #[must_use]
    pub fn recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    fn require_budget(&self) -> Result<MemoryBudget, ConfigError> {
        self.budget.ok_or_else(|| {
            ConfigError::new(format!(
                "building a {} monitor requires a memory budget",
                self.kind
            ))
        })
    }

    fn hashflow_config(&self, budget: MemoryBudget) -> Result<HashFlowConfig, ConfigError> {
        let config = HashFlowConfig::with_memory(budget)?;
        match self.seed {
            Some(seed) => config.rebuild().seed(seed).build(),
            None => Ok(config),
        }
    }

    fn build_hashflow(&self, budget: MemoryBudget) -> Result<HashFlow, ConfigError> {
        let mut monitor = HashFlow::new(self.hashflow_config(budget)?)?;
        if let Some(tracer) = &self.tracer {
            monitor.set_tracer(tracer.clone());
        }
        Ok(monitor)
    }

    fn build_flowradar(&self, budget: MemoryBudget) -> Result<FlowRadar, ConfigError> {
        match self.seed {
            Some(seed) => FlowRadar::with_memory_seeded(budget, seed),
            None => FlowRadar::with_memory(budget),
        }
    }

    fn build_netflow(&self, budget: MemoryBudget) -> Result<SampledNetFlow, ConfigError> {
        match self.seed {
            Some(seed) => SampledNetFlow::with_memory_seeded(budget, self.sampling_n, seed),
            None => SampledNetFlow::with_memory(budget, self.sampling_n),
        }
    }

    fn build_countmin(&self, budget: MemoryBudget) -> Result<CountMinMonitor, ConfigError> {
        match self.seed {
            Some(seed) => CountMinMonitor::with_memory_seeded(budget, seed),
            None => CountMinMonitor::with_memory(budget),
        }
    }

    fn build_fcm(&self, budget: MemoryBudget) -> Result<FcmMonitor, ConfigError> {
        match self.seed {
            Some(seed) => FcmMonitor::with_memory_seeded(budget, seed),
            None => FcmMonitor::with_memory(budget),
        }
    }

    fn build_beaucoup(&self, budget: MemoryBudget) -> Result<BeauCoupMonitor, ConfigError> {
        match self.seed {
            Some(seed) => BeauCoupMonitor::with_memory_seeded(budget, seed),
            None => BeauCoupMonitor::with_memory(budget),
        }
    }

    /// The records-capability gate behind [`Self::require_records`].
    fn check_records(&self) -> Result<(), ConfigError> {
        if self.require_records && !self.kind.supports_records() {
            return Err(ConfigError::new(format!(
                "{} is estimate-only and cannot answer records-based queries \
                 (flow report, heavy hitters, top_k); use a key-retaining \
                 algorithm or drop require_records()",
                self.kind
            )));
        }
        Ok(())
    }

    /// Constructs the monitor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the budget is missing or too small
    /// for the algorithm's minimum geometry, when `shards == 0`, or when
    /// `shards > 1` is requested for an algorithm without the merge layer
    /// ([`AlgorithmKind::supports_sharding`]).
    pub fn build(&self) -> Result<Box<dyn FlowMonitor + Send>, ConfigError> {
        let budget = self.require_budget()?;
        self.check_records()?;
        if self.shards == 0 {
            return Err(ConfigError::new("shard count must be at least 1"));
        }
        if self.shards > 1 {
            return self.build_sharded(budget);
        }
        Ok(match self.kind {
            AlgorithmKind::HashFlow => Box::new(self.build_hashflow(budget)?),
            AlgorithmKind::HashPipe => Box::new(match self.seed {
                Some(seed) => HashPipe::with_memory_seeded(budget, seed)?,
                None => HashPipe::with_memory(budget)?,
            }),
            AlgorithmKind::Elastic => Box::new(match self.seed {
                Some(seed) => ElasticSketch::with_memory_seeded(budget, seed)?,
                None => ElasticSketch::with_memory(budget)?,
            }),
            AlgorithmKind::FlowRadar => Box::new(self.build_flowradar(budget)?),
            AlgorithmKind::NetFlow => Box::new(self.build_netflow(budget)?),
            AlgorithmKind::CountMin => Box::new(self.build_countmin(budget)?),
            AlgorithmKind::Fcm => Box::new(self.build_fcm(budget)?),
            AlgorithmKind::BeauCoup => Box::new(self.build_beaucoup(budget)?),
            AlgorithmKind::Exact => Box::new(match self.seed {
                Some(seed) => ExactBaselineMonitor::with_memory_seeded(budget, seed)?,
                None => ExactBaselineMonitor::with_memory(budget)?,
            }),
        })
    }

    fn build_sharded(
        &self,
        budget: MemoryBudget,
    ) -> Result<Box<dyn FlowMonitor + Send>, ConfigError> {
        fn shard<M: MergeableMonitor + Send + 'static>(
            builder: &MonitorBuilder,
            budget: MemoryBudget,
            build: impl FnMut(usize, MemoryBudget) -> Result<M, ConfigError>,
        ) -> Result<Box<dyn FlowMonitor + Send>, ConfigError> {
            let mut monitor = ShardedMonitor::with_budget(builder.shards, budget, build)?;
            if let Some(registry) = &builder.metrics {
                monitor.set_metrics(registry);
            }
            if let Some(tracer) = &builder.tracer {
                monitor.set_tracer(tracer.clone());
            }
            if let Some(recorder) = &builder.recorder {
                monitor.set_recorder(recorder.clone());
            }
            Ok(Box::new(monitor))
        }
        match self.kind {
            AlgorithmKind::HashFlow => shard(self, budget, |_, b| self.build_hashflow(b)),
            AlgorithmKind::FlowRadar => shard(self, budget, |_, b| self.build_flowradar(b)),
            AlgorithmKind::NetFlow => shard(self, budget, |_, b| self.build_netflow(b)),
            AlgorithmKind::CountMin => shard(self, budget, |_, b| self.build_countmin(b)),
            AlgorithmKind::Fcm => shard(self, budget, |_, b| self.build_fcm(b)),
            AlgorithmKind::BeauCoup => shard(self, budget, |_, b| self.build_beaucoup(b)),
            AlgorithmKind::Exact => shard(self, budget, |_, b| match self.seed {
                Some(seed) => ExactBaselineMonitor::with_memory_seeded(b, seed),
                None => ExactBaselineMonitor::with_memory(b),
            }),
            AlgorithmKind::HashPipe | AlgorithmKind::Elastic => Err(ConfigError::new(format!(
                "{} does not implement the merge layer and cannot run sharded; \
                 use one of: {}",
                self.kind,
                AlgorithmKind::sharded_names()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> MemoryBudget {
        MemoryBudget::from_kib(256).unwrap()
    }

    /// `unwrap_err` without requiring the (non-Debug) boxed monitor.
    fn expect_err<T>(result: Result<T, ConfigError>) -> ConfigError {
        match result {
            Err(e) => e,
            Ok(_) => panic!("expected a construction error"),
        }
    }

    #[test]
    fn parse_resolves_names_and_aliases() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(
                AlgorithmKind::parse(&kind.name().to_ascii_uppercase()).unwrap(),
                kind
            );
        }
        assert_eq!(
            AlgorithmKind::parse("elasticsketch").unwrap(),
            AlgorithmKind::Elastic
        );
        assert_eq!(
            AlgorithmKind::parse("sampled").unwrap(),
            AlgorithmKind::NetFlow
        );
        assert_eq!(AlgorithmKind::parse("cm").unwrap(), AlgorithmKind::CountMin);
        assert_eq!(
            AlgorithmKind::parse("baseline").unwrap(),
            AlgorithmKind::Exact
        );
        assert_eq!(
            "flowradar".parse::<AlgorithmKind>().unwrap(),
            AlgorithmKind::FlowRadar
        );
    }

    #[test]
    fn unknown_name_errors_with_the_valid_list() {
        let err = AlgorithmKind::parse("quantum").unwrap_err().to_string();
        assert!(err.contains("unknown algorithm 'quantum'"), "{err}");
        for kind in AlgorithmKind::ALL {
            assert!(err.contains(kind.name()), "{err} missing {kind}");
        }
    }

    #[test]
    fn builds_every_algorithm_with_and_without_seed() {
        for kind in AlgorithmKind::ALL {
            let plain = MonitorBuilder::new(kind).budget(budget()).build().unwrap();
            let seeded = MonitorBuilder::new(kind)
                .budget(budget())
                .seed(99)
                .build()
                .unwrap();
            assert_eq!(plain.name(), seeded.name());
            assert!(plain.memory_bits() <= budget().bits(), "{kind}");
            assert!(
                plain.memory_bits() > budget().bits() * 9 / 10,
                "{kind} underuses its budget"
            );
        }
    }

    #[test]
    fn budget_is_required() {
        let err = expect_err(MonitorBuilder::new(AlgorithmKind::HashFlow).build());
        assert!(err.to_string().contains("memory budget"), "{err}");
    }

    #[test]
    fn sharded_builds_split_the_budget() {
        for kind in AlgorithmKind::ALL
            .into_iter()
            .filter(|k| k.supports_sharding())
        {
            let sharded = MonitorBuilder::new(kind)
                .budget(budget())
                .shards(4)
                .build()
                .unwrap();
            assert!(sharded.memory_bits() <= budget().bits(), "{kind}");
        }
    }

    #[test]
    fn sharding_rejected_for_non_mergeable_algorithms() {
        for kind in [AlgorithmKind::HashPipe, AlgorithmKind::Elastic] {
            assert!(!kind.supports_sharding());
            let err = expect_err(MonitorBuilder::new(kind).budget(budget()).shards(2).build());
            assert!(err.to_string().contains("merge layer"), "{err}");
        }
        let err = expect_err(
            MonitorBuilder::new(AlgorithmKind::HashFlow)
                .budget(budget())
                .shards(0)
                .build(),
        );
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn seed_changes_table_placement_but_not_identity() {
        use hashflow_monitor::FlowMonitor as _;
        use hashflow_types::{FlowKey, Packet};
        // Same trace, different seeds: same flows recorded (HashFlow's
        // main table is exact), different internal placement is invisible
        // at the query surface.
        let mut a = MonitorBuilder::new(AlgorithmKind::HashFlow)
            .budget(budget())
            .seed(1)
            .build()
            .unwrap();
        let mut b = MonitorBuilder::new(AlgorithmKind::HashFlow)
            .budget(budget())
            .seed(2)
            .build()
            .unwrap();
        for i in 0..500u64 {
            let p = Packet::new(FlowKey::from_index(i % 50), i, 64);
            a.process_packet(&p);
            b.process_packet(&p);
        }
        assert_eq!(a.flow_records().len(), b.flow_records().len());
    }

    #[test]
    fn capability_flags_match_the_zoo() {
        use hashflow_monitor::FlowMonitor as _;
        use hashflow_types::{FlowKey, Packet};
        for kind in AlgorithmKind::ALL {
            let mut monitor = MonitorBuilder::new(kind).budget(budget()).build().unwrap();
            for i in 0..200u64 {
                monitor.process_packet(&Packet::new(FlowKey::from_index(i % 20), i, 64));
            }
            assert_eq!(
                !monitor.flow_records().is_empty(),
                kind.supports_records(),
                "{kind}: supports_records flag disagrees with the monitor"
            );
        }
    }

    #[test]
    fn require_records_rejects_estimate_only_kinds() {
        for kind in [AlgorithmKind::CountMin, AlgorithmKind::Fcm] {
            assert!(!kind.supports_records());
            let err = expect_err(
                MonitorBuilder::new(kind)
                    .budget(budget())
                    .require_records()
                    .build(),
            );
            assert!(err.to_string().contains("estimate-only"), "{err}");
        }
        for kind in AlgorithmKind::ALL
            .into_iter()
            .filter(|k| k.supports_records())
        {
            assert!(
                MonitorBuilder::new(kind)
                    .budget(budget())
                    .require_records()
                    .build()
                    .is_ok(),
                "{kind} retains records and must pass the gate"
            );
        }
    }

    #[test]
    fn netflow_sampling_knob_applies() {
        let monitor = MonitorBuilder::new(AlgorithmKind::NetFlow)
            .budget(budget())
            .sampling(0)
            .build();
        assert!(monitor.is_err(), "sampling_n = 0 must be rejected");
        assert!(MonitorBuilder::new(AlgorithmKind::NetFlow)
            .budget(budget())
            .sampling(30)
            .build()
            .is_ok());
    }
}
