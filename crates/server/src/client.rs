//! A minimal blocking HTTP/1.1 client for tests, exhibits and smoke
//! scripts.
//!
//! Only what the harnesses need: single-request connections (the client
//! sends `Connection: close`), status + UTF-8 body out. Deliberately
//! not a general client — no redirects, no chunked encoding, no TLS —
//! because its one job is talking to [`crate::Server`]'s own API, which
//! uses none of those.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Per-request timeout applied to connect, read and write.
const TIMEOUT: Duration = Duration::from_secs(10);

/// Issues a `GET` and returns `(status, body)`.
///
/// # Errors
///
/// Any socket error, a timeout, or a malformed status line.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, b"")
}

/// Issues a `POST` with a plain-text body and returns `(status, body)`.
///
/// # Errors
///
/// Any socket error, a timeout, or a malformed status line.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body.as_bytes())
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, TIMEOUT)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<(u16, String)> {
    let text = String::from_utf8_lossy(raw);
    let mut lines = text.splitn(2, "\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "no");
    }

    #[test]
    fn rejects_garbage_status() {
        assert!(parse_response(b"nonsense").is_err());
    }
}
