//! Minimal JSON emission for the HTTP API.
//!
//! The workspace is offline and dependency-free, so the query API's
//! responses are built with a small by-hand writer instead of a serde
//! stack. Only what the endpoints need exists: string escaping per RFC
//! 8259 and ergonomic object/array builders that keep the endpoint code
//! readable. Numbers are written via `Display` (all integers or finite
//! floats in this API), booleans and `null` literally.

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes): `"`, `\` and control characters become escape sequences,
/// everything else passes through as UTF-8.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// An object under construction — fields render in insertion order.
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Adds a field whose value is already-rendered JSON.
    #[must_use]
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = string(value);
        self.raw(key, rendered)
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float field (`null` when not finite — JSON has no NaN).
    #[must_use]
    pub fn f64(self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            self.raw(key, format!("{value}"))
        } else {
            self.raw(key, "null")
        }
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Adds an optional unsigned field (`null` when absent).
    #[must_use]
    pub fn opt_u64(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.u64(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Renders the object.
    pub fn build(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// Renders an array of already-rendered JSON values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("ok"), "\"ok\"");
    }

    #[test]
    fn builds_nested_values() {
        let inner = Obj::new().u64("n", 3).bool("ok", true).build();
        let outer = Obj::new()
            .str("name", "x")
            .raw("rows", array(vec![inner]))
            .f64("ratio", 0.5)
            .opt_u64("missing", None)
            .build();
        assert_eq!(
            outer,
            "{\"name\":\"x\",\"rows\":[{\"n\":3,\"ok\":true}],\
             \"ratio\":0.5,\"missing\":null}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Obj::new().f64("v", f64::NAN).build(), "{\"v\":null}");
    }
}
