//! The reader-facing published state: sealed epochs behind an `Arc`
//! swap.
//!
//! The daemon's single writer (the ingest loop) owns the live
//! [`hashflow_collector::Collector`]; HTTP workers never touch it.
//! Instead, each seal rebuilds an immutable [`SealedView`] and publishes
//! it through [`Published`] — one `Arc` pointer swap under a mutex held
//! for nanoseconds. Readers [`Published::load`] a pointer clone and then
//! query frozen snapshots with no locks at all, so a burst of concurrent
//! HTTP clients cannot stall ingest: the writer's critical section is
//! O(1) and independent of reader count, and readers holding an old view
//! keep it alive (and consistent) for as long as they need it.
//!
//! Memory stays bounded because the view's epoch ring is capped at the
//! configured retention — evicted epochs die when the last reader drops
//! its `Arc`.

use hashflow_monitor::{EpochSnapshot, SinkStatus};
use hashflow_query::{QueryId, QueryResult};
use std::sync::{Arc, Mutex};

/// One attached query plan, as the API reports it.
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// Id addressing the plan ([`hashflow_query::QueryId`]).
    pub id: QueryId,
    /// The plan's canonical text form.
    pub plan: String,
}

/// The banked per-plan answers of one sealed epoch.
#[derive(Debug, Clone)]
pub struct EpochAnswers {
    /// Epoch sequence number the answers belong to.
    pub epoch: u64,
    /// One result per attached plan, in attach order.
    pub answers: Vec<QueryResult>,
}

/// Pipeline health as of the last publish.
#[derive(Debug, Clone, Default)]
pub struct HealthView {
    /// Per-sink health in attach order.
    pub sinks: Vec<SinkStatus>,
    /// Active monitor-side degradation (e.g. dead shard lanes), one
    /// line each ([`hashflow_monitor::FlowMonitor::faults`]).
    pub faults: Vec<String>,
    /// Whether the daemon has finished (final epoch sealed, sinks
    /// flushed).
    pub finished: bool,
}

impl HealthView {
    /// Whether anything is degraded enough that `/healthz` should turn
    /// the daemon unhealthy: a quarantined sink (epochs are being
    /// skipped) or a monitor fault (the current epoch is losing data).
    pub fn is_unhealthy(&self) -> bool {
        !self.faults.is_empty()
            || self
                .sinks
                .iter()
                .any(|s| s.health == hashflow_monitor::SinkHealth::Quarantined)
    }

    /// Whether any sink is degraded (still delivering, recently
    /// failing).
    pub fn is_degraded(&self) -> bool {
        self.sinks
            .iter()
            .any(|s| s.health != hashflow_monitor::SinkHealth::Healthy)
    }
}

/// One immutable generation of everything the query API serves.
#[derive(Debug, Default)]
pub struct SealedView {
    /// Retained sealed epochs, oldest first. Epoch numbers are stable —
    /// an evicted epoch's number is never reused, so `/epochs/{n}`
    /// returning 404 means *evicted or not yet sealed*, never renamed.
    pub epochs: Vec<Arc<EpochSnapshot>>,
    /// Attached query plans in attach order.
    pub queries: Vec<QueryInfo>,
    /// Banked per-epoch answers for the retained window, oldest first.
    pub answers: Vec<EpochAnswers>,
    /// Sink and monitor health at publish time.
    pub health: HealthView,
    /// Epochs sealed over the daemon's lifetime (≥ `epochs.len()`).
    pub sealed_total: u64,
}

impl SealedView {
    /// Finds a retained epoch by sequence number.
    pub fn epoch(&self, n: u64) -> Option<&Arc<EpochSnapshot>> {
        // The ring is ordered and tiny (retention-bounded); a linear
        // scan beats maintaining an index.
        self.epochs.iter().find(|s| s.epoch() == n)
    }
}

/// The swap cell the writer publishes [`SealedView`]s through.
///
/// `load` and `store` both hold the mutex only to clone or replace one
/// `Arc` — no reader ever blocks the writer for longer than a pointer
/// copy, and readers never block each other on the data itself.
#[derive(Debug)]
pub struct Published {
    current: Mutex<Arc<SealedView>>,
}

impl Default for Published {
    fn default() -> Self {
        Published::new()
    }
}

impl Published {
    /// Starts with an empty view (no epochs, healthy, not finished).
    pub fn new() -> Self {
        Published {
            current: Mutex::new(Arc::new(SealedView::default())),
        }
    }

    /// The current view. The returned `Arc` stays valid (and immutable)
    /// however long the caller holds it.
    pub fn load(&self) -> Arc<SealedView> {
        self.current
            .lock()
            .expect("published view poisoned")
            .clone()
    }

    /// Replaces the current view.
    pub fn store(&self, view: Arc<SealedView>) {
        *self.current.lock().expect("published view poisoned") = view;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_is_visible_and_old_views_survive() {
        let p = Published::new();
        let before = p.load();
        assert_eq!(before.sealed_total, 0);
        let snap = Arc::new(EpochSnapshot::from_parts(
            7,
            Some(0),
            Some(10),
            Vec::new(),
            0.0,
            Default::default(),
        ));
        p.store(Arc::new(SealedView {
            epochs: vec![snap],
            sealed_total: 8,
            ..Default::default()
        }));
        let after = p.load();
        assert_eq!(after.sealed_total, 8);
        assert!(after.epoch(7).is_some());
        assert!(after.epoch(6).is_none());
        // The pre-swap reader still sees its own consistent generation.
        assert_eq!(before.sealed_total, 0);
    }

    #[test]
    fn health_rollup_rules() {
        let mut h = HealthView::default();
        assert!(!h.is_unhealthy());
        assert!(!h.is_degraded());
        h.faults.push("shard 0: worker panicked".into());
        assert!(h.is_unhealthy());
    }
}
