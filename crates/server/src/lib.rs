//! `hashflow-server`: the collector pipeline as a long-running network
//! service.
//!
//! Everything below this crate measures traffic it is *handed* — a trace
//! replayed through [`hashflow_collector::Collector`] inside one process,
//! sealed when the driver says so. This crate turns that pipeline into a
//! daemon with the three loops a deployed collector actually runs:
//!
//! 1. **Ingest front-ends** push packets in from outside: a UDP socket
//!    speaking the fixed-layout record format of [`wire`], and an
//!    in-process replay driver ([`Server::start_replay`]) that feeds a
//!    captured trace at line rate or token-bucket paced. Both go through
//!    one bounded [`hashflow_shard::BatchQueue`] under the workspace's
//!    uniform backpressure contract — a slow collector sheds (or stalls)
//!    by [`hashflow_monitor::BackpressurePolicy`], and every shed batch
//!    lands in a [`hashflow_monitor::DropStats`] ledger, so
//!    `offered == processed + dropped` holds for the whole run.
//! 2. **Wall-clock epoch rotation**: a deployed collector cannot wait for
//!    packet timestamps to cross an edge (quiet links would never seal),
//!    so the ingest loop seals every `epoch_ms` of *wall* time. Sealed
//!    epochs are published as immutable
//!    [`hashflow_monitor::EpochSnapshot`]s behind an
//!    atomically swapped [`std::sync::Arc`] ([`state::Published`]):
//!    readers clone a pointer and query frozen data, the writer never
//!    waits for a reader, and a bounded ring (again drop-accounted)
//!    keeps memory flat forever.
//! 3. **A concurrent query API**: a hand-rolled HTTP/1.1 server
//!    (`std::net` + a fixed worker pool, no external crates) exposing
//!    the sealed history, per-flow size estimates, the runtime metrics
//!    registry in Prometheus exposition format, sink/shard health and
//!    runtime query registration. See [`daemon`] for the endpoint table.
//!
//! Shutdown is cooperative: one [`ShutdownFlag`] is checked by every
//! loop. Triggering it (HTTP `POST /shutdown`, the CLI's `--duration-ms`
//! timer, or [`Server::shutdown`]) stops the front-ends, drains the
//! queue, seals the final — explicitly partial — epoch, flushes every
//! sink exactly once and reports the conservation ledger.
//!
//! The whole crate is `std`-only and `forbid(unsafe_code)`, like the
//! rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod http;
pub mod json;
pub mod state;
pub mod wire;

pub use daemon::{
    IngestPort, ReplayPace, ReplayStats, Server, ServerConfig, ServerError, ServerReport,
};
pub use http::{Request, Response};
pub use state::{EpochAnswers, HealthView, Published, QueryInfo, SealedView};

use std::sync::atomic::{AtomicBool, Ordering};

/// A cooperative shutdown signal shared by every loop in the daemon.
///
/// Pure-`std` programs cannot install OS signal handlers, so this flag
/// *is* the shutdown mechanism: whatever wants the daemon down (an HTTP
/// `POST /shutdown`, a duration timer, a test harness) triggers it, and
/// the ingest loop, the UDP listener, the replay drivers and the HTTP
/// workers all poll it at their natural wakeup points (queue deadlines,
/// socket read timeouts).
#[derive(Debug, Default)]
pub struct ShutdownFlag(AtomicBool);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub const fn new() -> Self {
        ShutdownFlag(AtomicBool::new(false))
    }

    /// Requests shutdown. Idempotent; never blocks.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}
