//! The collector daemon: configuration, lifecycle and the HTTP routes.
//!
//! # Thread model
//!
//! ```text
//! UDP listener ──┐                       ┌── HTTP worker 0 ─┐
//! replay driver ─┼─▶ BatchQueue ─▶ ingest┤     ...          ├─▶ clients
//! replay driver ─┘    (bounded)    thread└── HTTP worker N ─┘
//!                                    │
//!                                    └─▶ Published (Arc swap)
//! ```
//!
//! Exactly one thread — the ingest loop — owns the
//! [`Collector`]; every front-end hands it packets through one bounded
//! [`BatchQueue`] via [`IngestPort::offer`] (the uniform backpressure
//! contract: shed batches come back and are ledgered on the spot), and
//! every reader sees only immutable [`SealedView`]s published behind an
//! `Arc` swap. There is no lock anywhere that both the ingest path and a
//! reader can hold, so slow or numerous HTTP clients cannot stall
//! ingest.
//!
//! # Endpoints
//!
//! | Method/path | Serves |
//! |---|---|
//! | `GET /` | endpoint index |
//! | `GET /epochs` | sealed-epoch summaries (retained window) |
//! | `GET /epochs/{n}` | one epoch's summary |
//! | `GET /epochs/{n}/top?k=K` | top-K flows of epoch `n` |
//! | `GET /epochs/{n}/flows/{key}` | size estimate of one flow |
//! | `GET /queries` | attached plans + banked per-epoch answers |
//! | `POST /queries` | attach a plan (body = plan text) at runtime |
//! | `GET /metrics` | Prometheus exposition of the runtime registry |
//! | `GET /healthz` | sink + shard health (`503` when unhealthy) |
//! | `GET /debug/events?since=N` | flight-recorder events after seq `N` |
//! | `GET /debug/flows/{key}` | sampling verdict + recorded spans of one flow |
//! | `GET /debug/introspect` | sketch-internal gauges of the latest epoch |
//! | `POST /shutdown` | trigger graceful shutdown |
//!
//! Every request is self-instrumented: the daemon counts
//! `hashflow_server_http_requests_total{route,status}` and feeds a
//! per-route latency histogram, both visible on its own `/metrics`.
//!
//! # Epochs
//!
//! Rotation here is **wall-clock** driven: the ingest loop seals every
//! [`ServerConfig::epoch_ms`] of real time, because a deployed collector
//! cannot wait for packet timestamps to cross an edge — a quiet link
//! would never seal. Epochs in which no packet arrived are skipped (no
//! empty snapshots), mirroring the timestamp-driven rotator's quiet-gap
//! rule. The final epoch sealed during shutdown is marked
//! [`EpochSnapshot::is_partial`]: it was truncated by the shutdown, not
//! by the timer.

use crate::http::{self, Request, Response};
use crate::json::{self, Obj};
use crate::state::{EpochAnswers, HealthView, Published, QueryInfo, SealedView};
use crate::{wire, ShutdownFlag};
use hashflow_collector::{AlgorithmKind, Collector};
use hashflow_monitor::{
    BackpressurePolicy, DropStats, EpochSnapshot, FlowMonitor, FlowTracer, HealthPolicy,
    IntrospectValue, MemoryBudget, RecordSink, SinkErrors, DEFAULT_TRACE_SAMPLING, FLOW_SPAN_KIND,
};
use hashflow_obs::{FlightRecorder, MetricsRegistry, Severity, DEFAULT_RECORDER_CAPACITY};
use hashflow_query::QueryPlan;
use hashflow_shard::{BatchQueue, PopOutcome, PushOutcome};
use hashflow_types::{ConfigError, FlowKey, Packet};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::str::FromStr;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Packets per batch offered by the replay driver and expected from
/// well-behaved UDP taps (one datagram ≈ one batch).
pub const REPLAY_BATCH: usize = 256;

/// How long the ingest loop waits on the queue before re-checking the
/// epoch timer and the command channel.
const INGEST_POLL: Duration = Duration::from_millis(50);

/// Daemon configuration. `Default` is a runnable single-shard HashFlow
/// collector on ephemeral loopback ports with no UDP front-end.
pub struct ServerConfig {
    /// Algorithm to build ([`AlgorithmKind`]).
    pub algorithm: AlgorithmKind,
    /// Monitor memory budget in KiB.
    pub memory_kib: usize,
    /// Shard count (>1 requires a merge-layer algorithm).
    pub shards: usize,
    /// Master hash seed.
    pub seed: u64,
    /// Wall-clock epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Sealed epochs retained for the query API (older ones are
    /// evicted, drop-accounted, and `404`).
    pub retention: usize,
    /// HTTP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub http_addr: String,
    /// UDP ingest bind address; `None` disables the UDP front-end.
    pub udp_addr: Option<String>,
    /// HTTP worker threads.
    pub http_workers: usize,
    /// Ingest queue capacity in batches.
    pub ingest_capacity: usize,
    /// What a full ingest queue does to arriving batches. The default
    /// is [`BackpressurePolicy::DropNewest`]: a live collector sheds
    /// load rather than stalling its front-ends (`Block` is for replay
    /// rigs that prefer lossless ingest over pacing).
    pub ingest_policy: BackpressurePolicy,
    /// Query plans (text form) attached at startup.
    pub queries: Vec<String>,
    /// Export sinks attached at startup.
    pub sinks: Vec<Box<dyn RecordSink + Send>>,
    /// Sink health state-machine thresholds, if overriding the default.
    pub sink_health: Option<HealthPolicy>,
    /// Flow-path tracing: `Some(n)` samples 1-in-`n` flows (by key hash,
    /// so the same flows are sampled on every path) and records their
    /// placement/dispatch/export spans in the flight recorder. `None`
    /// disables tracing entirely (zero per-packet cost beyond a branch).
    pub trace_sampling: Option<u64>,
    /// Flight-recorder ring capacity in events.
    pub recorder_capacity: usize,
    /// File that automatic fault dumps (sink quarantine, shard panic)
    /// append to as JSONL; `None` keeps dumps in-memory only (the ring
    /// is still served by `/debug/events`).
    pub dump_path: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            algorithm: AlgorithmKind::HashFlow,
            memory_kib: 256,
            shards: 1,
            seed: 0xC0FFEE,
            epoch_ms: 1_000,
            retention: 64,
            http_addr: "127.0.0.1:0".to_string(),
            udp_addr: None,
            http_workers: 4,
            ingest_capacity: 64,
            ingest_policy: BackpressurePolicy::DropNewest,
            queries: Vec::new(),
            sinks: Vec::new(),
            sink_health: None,
            trace_sampling: Some(DEFAULT_TRACE_SAMPLING),
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            dump_path: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("algorithm", &self.algorithm)
            .field("memory_kib", &self.memory_kib)
            .field("shards", &self.shards)
            .field("epoch_ms", &self.epoch_ms)
            .field("retention", &self.retention)
            .field("http_addr", &self.http_addr)
            .field("udp_addr", &self.udp_addr)
            .field("queries", &self.queries)
            .field("sinks", &self.sinks.len())
            .field("trace_sampling", &self.trace_sampling)
            .field("dump_path", &self.dump_path)
            .finish_non_exhaustive()
    }
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum ServerError {
    /// A pipeline configuration error (bad algorithm/budget/plan).
    Config(ConfigError),
    /// A socket could not be bound or cloned.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "configuration: {e}"),
            ServerError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        ServerError::Config(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// The shared front-door every ingest source pushes through: the
/// bounded queue plus the offer-side conservation ledger.
///
/// [`IngestPort::offer`] applies the configured
/// [`BackpressurePolicy`] and accounts the outcome immediately — every
/// record is *offered* exactly once, and every record that the policy
/// sheds (the arriving batch under `DropNewest`, displaced older
/// batches under `DropOldest`, anything arriving after close) is
/// *dropped* exactly once, so at quiescence
/// `offered == processed + dropped`.
#[derive(Debug)]
pub struct IngestPort {
    queue: Arc<BatchQueue<Packet>>,
    policy: BackpressurePolicy,
    drops: DropStats,
    recorder: FlightRecorder,
}

impl IngestPort {
    /// Offers one batch under the port's policy, ledgering any shed.
    /// Shed batches also land in the flight recorder (one event per
    /// shed batch, never per packet, so a sustained overload cannot
    /// flood the ring faster than the queue turns over).
    pub fn offer(&self, batch: Vec<Packet>) {
        self.drops.record_offer(batch.len() as u64);
        match self.queue.offer(batch, self.policy) {
            PushOutcome::Enqueued => {}
            PushOutcome::Displaced(old) => {
                for b in old {
                    self.shed(b.len() as u64, "displaced");
                }
            }
            PushOutcome::Rejected(b) => self.shed(b.len() as u64, "rejected"),
        }
    }

    fn shed(&self, packets: u64, why: &str) {
        self.drops.record_drop(packets);
        self.recorder.record_with(
            Severity::Warn,
            "batch_shed",
            format!("ingest queue {why} a batch of {packets} packets"),
            vec![("packets".to_string(), packets.to_string())],
        );
    }

    /// The offer-side conservation ledger (shared handles).
    pub fn drop_stats(&self) -> &DropStats {
        &self.drops
    }
}

/// Pacing of a [`Server::start_replay`] driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayPace {
    /// Offer batches as fast as the queue accepts them.
    LineRate,
    /// Token-bucket paced to this many packets per second (burst
    /// capacity ≈ 10 ms of tokens).
    Pps(u64),
}

/// What one replay driver accomplished.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Packets offered to the ingest port.
    pub packets: u64,
    /// Batches offered.
    pub batches: u64,
    /// Wall clock from first to last offer.
    pub elapsed: Duration,
}

/// What the ingest thread reports when it exits.
struct IngestReport {
    processed: u64,
    sealed: u64,
    finish: Result<(), SinkErrors>,
}

/// End-of-run summary returned by [`Server::shutdown`].
#[derive(Debug)]
pub struct ServerReport {
    /// Packets the collector actually processed.
    pub packets_processed: u64,
    /// Epochs sealed over the run (final partial epoch included).
    pub epochs_sealed: u64,
    /// Records offered at the ingest port (every front-end).
    pub offered_records: u64,
    /// Records shed by the backpressure policy, ledger-accounted.
    pub dropped_records: u64,
    /// Per-driver stats of every [`Server::start_replay`] call.
    pub replays: Vec<ReplayStats>,
    /// Sink errors collected by the final flush, if any.
    pub sink_errors: Option<SinkErrors>,
}

impl ServerReport {
    /// The pipeline-wide conservation invariant: every offered record
    /// was either processed or accounted as dropped.
    pub fn conserved(&self) -> bool {
        self.offered_records == self.packets_processed + self.dropped_records
    }
}

/// Commands the HTTP side sends to the ingest thread (which owns the
/// collector).
enum Command {
    AttachQuery {
        plan: QueryPlan,
        text: String,
        reply: mpsc::Sender<usize>,
    },
}

/// A running daemon. Dropping it without [`Server::shutdown`] still
/// flushes sinks (the collector's own `Drop` does), but detached
/// threads are abandoned — call `shutdown` for the orderly path.
pub struct Server {
    http_addr: SocketAddr,
    udp_addr: Option<SocketAddr>,
    shutdown: Arc<ShutdownFlag>,
    queue: Arc<BatchQueue<Packet>>,
    port: Arc<IngestPort>,
    published: Arc<Published>,
    registry: MetricsRegistry,
    recorder: FlightRecorder,
    tracer: Option<FlowTracer>,
    pool: Option<http::HttpPool>,
    ingest: Option<JoinHandle<IngestReport>>,
    udp_thread: Option<JoinHandle<()>>,
    replays: Vec<JoinHandle<ReplayStats>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("http_addr", &self.http_addr)
            .field("udp_addr", &self.udp_addr)
            .field("replays", &self.replays.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Boots the daemon: builds the pipeline, binds the sockets, spawns
    /// the ingest loop, the UDP listener (if configured) and the HTTP
    /// worker pool.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for pipeline misconfiguration (unknown
    /// algorithm options, unparseable query plans),
    /// [`ServerError::Io`] when a socket cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        let registry = MetricsRegistry::new();
        let boot = Instant::now();
        registry
            .gauge(
                "hashflow_build_info",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1);
        let recorder = FlightRecorder::with_capacity(config.recorder_capacity.max(1));
        if let Some(path) = &config.dump_path {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            recorder.set_dump_writer(Box::new(file));
        }
        let tracer = config
            .trace_sampling
            .map(|n| FlowTracer::new(recorder.clone(), n));
        let mut builder = Collector::builder(config.algorithm)
            .budget(MemoryBudget::from_kib(config.memory_kib)?)
            .seed(config.seed)
            .with_metrics(registry.clone())
            .with_recorder(recorder.clone())
            // The published ring is the reader-facing retention; the
            // collector-side stores are belts kept at the same bound.
            .retention(config.retention.max(1), BackpressurePolicy::DropOldest)
            .answer_limit(config.retention.max(1), BackpressurePolicy::DropOldest);
        if config.shards > 1 {
            builder = builder.shards(config.shards);
        }
        if let Some(policy) = config.sink_health {
            builder = builder.sink_health_policy(policy);
        }
        if let Some(t) = &tracer {
            builder = builder.with_tracer(t.clone());
        }
        for sink in config.sinks {
            builder = builder.sink(sink);
        }
        let mut collector = builder.build()?;
        let mut queries = Vec::with_capacity(config.queries.len());
        for text in &config.queries {
            let plan = QueryPlan::from_str(text)?;
            let id = collector.attach_query(plan.clone());
            queries.push(QueryInfo {
                id,
                plan: plan.to_string(),
            });
        }

        let shutdown = Arc::new(ShutdownFlag::new());
        let published = Arc::new(Published::new());
        let queue = Arc::new(BatchQueue::new(config.ingest_capacity.max(1)));
        let ingest_drops = DropStats::new();
        ingest_drops.register(&registry, "server_ingest");
        let port = Arc::new(IngestPort {
            queue: Arc::clone(&queue),
            policy: config.ingest_policy,
            drops: ingest_drops,
            recorder: recorder.clone(),
        });

        let listener = TcpListener::bind(&config.http_addr)?;
        let http_addr = listener.local_addr()?;
        let udp_socket = match &config.udp_addr {
            Some(addr) => Some(UdpSocket::bind(addr)?),
            None => None,
        };
        let udp_addr = udp_socket.as_ref().map(|s| s.local_addr()).transpose()?;

        let (command_tx, command_rx) = mpsc::channel();
        let ingest = {
            let queue = Arc::clone(&queue);
            let published = Arc::clone(&published);
            let registry = registry.clone();
            let epoch_len = Duration::from_millis(config.epoch_ms.max(1));
            let retention = config.retention.max(1);
            std::thread::Builder::new()
                .name("hf-ingest".to_string())
                .spawn(move || {
                    run_ingest(
                        collector, queue, command_rx, published, registry, epoch_len, retention,
                        queries,
                    )
                })
                .map_err(ServerError::Io)?
        };

        let udp_thread = match udp_socket {
            Some(socket) => {
                let port = Arc::clone(&port);
                let shutdown = Arc::clone(&shutdown);
                let wire_errors = registry.counter("hashflow_server_wire_errors_total", &[]);
                let recorder = recorder.clone();
                socket.set_read_timeout(Some(Duration::from_millis(100)))?;
                Some(
                    std::thread::Builder::new()
                        .name("hf-udp".to_string())
                        .spawn(move || run_udp(&socket, &port, &shutdown, &wire_errors, &recorder))
                        .map_err(ServerError::Io)?,
                )
            }
            None => None,
        };

        let router_state = Arc::new(RouterState {
            published: Arc::clone(&published),
            registry: registry.clone(),
            commands: Mutex::new(command_tx),
            shutdown: Arc::clone(&shutdown),
            recorder: recorder.clone(),
            tracer: tracer.clone(),
            boot,
        });
        let router: Arc<http::Router> = {
            let state = Arc::clone(&router_state);
            Arc::new(move |req: &Request| {
                let started = Instant::now();
                let response = route(&state, req);
                state.observe_http(req, &response, started.elapsed());
                response
            })
        };
        let pool = http::serve(listener, config.http_workers, Arc::clone(&shutdown), router)?;

        Ok(Server {
            http_addr,
            udp_addr,
            shutdown,
            queue,
            port,
            published,
            registry,
            recorder,
            tracer,
            pool: Some(pool),
            ingest: Some(ingest),
            udp_thread,
            replays: Vec::new(),
        })
    }

    /// The bound HTTP address (real port for `:0` binds).
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// The bound UDP ingest address, if the front-end is enabled.
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// The current published view (wait-free for the ingest path).
    pub fn view(&self) -> Arc<SealedView> {
        self.published.load()
    }

    /// The swap cell itself. A clone outlives [`Server::shutdown`], so
    /// harnesses can inspect the *final* published view (the one
    /// carrying the partial last epoch and `finished = true`).
    pub fn published(&self) -> Arc<Published> {
        Arc::clone(&self.published)
    }

    /// The daemon's metrics registry (shared handles).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The daemon's flight recorder (shared ring; every pipeline layer
    /// and the `/debug/events` endpoint read and write the same one).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The flow tracer, if [`ServerConfig::trace_sampling`] enabled one.
    pub fn tracer(&self) -> Option<&FlowTracer> {
        self.tracer.as_ref()
    }

    /// The shared ingest port, for embedding custom front-ends.
    pub fn ingest_port(&self) -> Arc<IngestPort> {
        Arc::clone(&self.port)
    }

    /// Requests shutdown without waiting (same flag `POST /shutdown`
    /// triggers). [`Server::shutdown`] still must run to join threads.
    pub fn trigger_shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Whether shutdown has been requested (by any trigger).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.is_set()
    }

    /// Spawns a replay driver feeding `packets` through the ingest port
    /// in [`REPLAY_BATCH`]-sized batches at the requested pace. Several
    /// drivers may run concurrently; each stops early if shutdown
    /// triggers mid-replay.
    pub fn start_replay(&mut self, packets: Vec<Packet>, pace: ReplayPace) {
        let port = Arc::clone(&self.port);
        let shutdown = Arc::clone(&self.shutdown);
        let handle = std::thread::Builder::new()
            .name("hf-replay".to_string())
            .spawn(move || run_replay(&packets, pace, &port, &shutdown))
            .expect("spawn replay driver");
        self.replays.push(handle);
    }

    /// Polls the published view until at least `n` epochs have sealed
    /// or `timeout` elapses. Returns whether the target was reached.
    pub fn wait_for_sealed(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.published.load().sealed_total >= n {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful shutdown: stops the front-ends, drains the queue, seals
    /// the final (partial) epoch, flushes every sink exactly once and
    /// joins every thread.
    pub fn shutdown(mut self) -> ServerReport {
        self.shutdown.trigger();
        // Front-ends first: once they stop offering, closing the queue
        // bounds the ingest thread's drain.
        let replays: Vec<ReplayStats> = self
            .replays
            .drain(..)
            .map(|h| h.join().unwrap_or_default())
            .collect();
        if let Some(udp) = self.udp_thread.take() {
            let _ = udp.join();
        }
        self.queue.close();
        let ingest = self
            .ingest
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("ingest thread panicked");
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        let drops = self.port.drop_stats();
        ServerReport {
            packets_processed: ingest.processed,
            epochs_sealed: ingest.sealed,
            offered_records: drops.offered_records(),
            dropped_records: drops.dropped_records(),
            replays,
            sink_errors: ingest.finish.err(),
        }
    }
}

/// The replay driver loop: token-bucket paced batch offers.
fn run_replay(
    packets: &[Packet],
    pace: ReplayPace,
    port: &IngestPort,
    shutdown: &ShutdownFlag,
) -> ReplayStats {
    let start = Instant::now();
    let mut stats = ReplayStats::default();
    let mut tokens = 0f64;
    let mut last_refill = Instant::now();
    'batches: for chunk in packets.chunks(REPLAY_BATCH) {
        if shutdown.is_set() {
            break;
        }
        if let ReplayPace::Pps(rate) = pace {
            let rate = rate.max(1) as f64;
            let need = chunk.len() as f64;
            // Burst capacity: 10 ms of tokens (at least one batch, so
            // low rates still make progress).
            let burst = (rate * 0.01).max(need);
            loop {
                let now = Instant::now();
                tokens = (tokens + now.duration_since(last_refill).as_secs_f64() * rate).min(burst);
                last_refill = now;
                if tokens >= need {
                    tokens -= need;
                    break;
                }
                if shutdown.is_set() {
                    break 'batches;
                }
                let wait = ((need - tokens) / rate).clamp(0.000_2, 0.005);
                std::thread::sleep(Duration::from_secs_f64(wait));
            }
        }
        port.offer(chunk.to_vec());
        stats.packets += chunk.len() as u64;
        stats.batches += 1;
    }
    stats.elapsed = start.elapsed();
    stats
}

/// The UDP front-end loop: decode datagrams, offer batches, count
/// malformed frames.
fn run_udp(
    socket: &UdpSocket,
    port: &IngestPort,
    shutdown: &ShutdownFlag,
    wire_errors: &hashflow_obs::Counter,
    recorder: &FlightRecorder,
) {
    let mut buf = vec![0u8; 64 * 1024];
    while !shutdown.is_set() {
        match socket.recv_from(&mut buf) {
            Ok((n, _)) => match wire::decode_datagram(&buf[..n]) {
                Ok(packets) => {
                    if !packets.is_empty() {
                        port.offer(packets);
                    }
                }
                Err(e) => {
                    wire_errors.inc();
                    recorder.record_with(
                        Severity::Warn,
                        "wire_junk",
                        format!("undecodable datagram ({n} bytes): {e}"),
                        vec![("bytes".to_string(), n.to_string())],
                    );
                }
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// The writer side: owns the collector, services the queue and the
/// command channel, seals on the wall clock, publishes sealed views.
#[allow(clippy::too_many_arguments)]
fn run_ingest(
    mut collector: Collector,
    queue: Arc<BatchQueue<Packet>>,
    commands: mpsc::Receiver<Command>,
    published: Arc<Published>,
    registry: MetricsRegistry,
    epoch_len: Duration,
    retention: usize,
    mut queries: Vec<QueryInfo>,
) -> IngestReport {
    let epoch_drops = DropStats::new();
    epoch_drops.register(&registry, "server_epochs");
    let answer_drops = DropStats::new();
    answer_drops.register(&registry, "server_answers");
    let mut epochs: VecDeque<Arc<EpochSnapshot>> = VecDeque::with_capacity(retention);
    let mut answers: VecDeque<EpochAnswers> = VecDeque::with_capacity(retention);
    let mut sealed_total = 0u64;
    let mut processed = 0u64;
    let mut epoch_packets = 0u64;
    let mut next_seal = Instant::now() + epoch_len;

    publish(
        &published,
        &collector,
        &epochs,
        &answers,
        &queries,
        sealed_total,
        false,
    );
    loop {
        while let Ok(cmd) = commands.try_recv() {
            match cmd {
                Command::AttachQuery { plan, text, reply } => {
                    let id = collector.attach_query(plan);
                    queries.push(QueryInfo { id, plan: text });
                    let _ = reply.send(id);
                    publish(
                        &published,
                        &collector,
                        &epochs,
                        &answers,
                        &queries,
                        sealed_total,
                        false,
                    );
                }
            }
        }
        let now = Instant::now();
        if now >= next_seal {
            if epoch_packets > 0 {
                seal_epoch(
                    &mut collector,
                    false,
                    retention,
                    &mut epochs,
                    &mut answers,
                    &epoch_drops,
                    &answer_drops,
                    &mut sealed_total,
                );
                epoch_packets = 0;
            }
            // Quiet epochs still refresh the published health view.
            publish(
                &published,
                &collector,
                &epochs,
                &answers,
                &queries,
                sealed_total,
                false,
            );
            while next_seal <= now {
                next_seal += epoch_len;
            }
            continue;
        }
        let wait = (next_seal - now).min(INGEST_POLL);
        match queue.pop_deadline(wait) {
            PopOutcome::Batch(batch) => {
                let n = batch.len() as u64;
                collector.process_batch(&batch);
                processed += n;
                epoch_packets += n;
            }
            PopOutcome::TimedOut => {}
            PopOutcome::Closed => break,
        }
    }
    // Shutdown: the queue is closed and fully drained. Seal whatever
    // the truncated final epoch holds, marked partial.
    if epoch_packets > 0 {
        seal_epoch(
            &mut collector,
            true,
            retention,
            &mut epochs,
            &mut answers,
            &epoch_drops,
            &answer_drops,
            &mut sealed_total,
        );
    }
    // Exactly-once flush: `finish` marks the collector finished, so its
    // own `Drop` (which flushes unfinished pipelines) becomes a no-op.
    let finish = collector.finish();
    publish(
        &published,
        &collector,
        &epochs,
        &answers,
        &queries,
        sealed_total,
        true,
    );
    IngestReport {
        processed,
        sealed: sealed_total,
        finish,
    }
}

/// Seals the running epoch, banks its answers and rotates the bounded
/// published rings (evictions drop-accounted).
#[allow(clippy::too_many_arguments)]
fn seal_epoch(
    collector: &mut Collector,
    partial: bool,
    retention: usize,
    epochs: &mut VecDeque<Arc<EpochSnapshot>>,
    answers: &mut VecDeque<EpochAnswers>,
    epoch_drops: &DropStats,
    answer_drops: &DropStats,
    sealed_total: &mut u64,
) {
    let snapshot = collector.seal().with_partial(partial);
    *sealed_total += 1;
    // Keep the collector-side stores empty: the published rings are the
    // single reader-facing retention buffer.
    let _ = collector.drain_completed();
    let epoch = snapshot.epoch();
    for banked in collector.drain_query_answers() {
        let rows = banked.iter().map(|r| r.rows().len() as u64).sum();
        answer_drops.record_offer(rows);
        answers.push_back(EpochAnswers {
            epoch,
            answers: banked,
        });
        while answers.len() > retention {
            if let Some(evicted) = answers.pop_front() {
                let rows = evicted.answers.iter().map(|r| r.rows().len() as u64).sum();
                answer_drops.record_drop(rows);
            }
        }
    }
    epoch_drops.record_offer(snapshot.len() as u64);
    epochs.push_back(Arc::new(snapshot));
    while epochs.len() > retention {
        if let Some(evicted) = epochs.pop_front() {
            epoch_drops.record_drop(evicted.len() as u64);
        }
    }
}

/// Rebuilds and swaps in a fresh [`SealedView`] (O(retention) `Arc`
/// clones — never proportional to flow counts).
fn publish(
    published: &Published,
    collector: &Collector,
    epochs: &VecDeque<Arc<EpochSnapshot>>,
    answers: &VecDeque<EpochAnswers>,
    queries: &[QueryInfo],
    sealed_total: u64,
    finished: bool,
) {
    published.store(Arc::new(SealedView {
        epochs: epochs.iter().cloned().collect(),
        queries: queries.to_vec(),
        answers: answers.iter().cloned().collect(),
        health: HealthView {
            sinks: collector.sink_health(),
            faults: collector.faults(),
            finished,
        },
        sealed_total,
    }));
}

/// Everything the HTTP routing closure needs.
struct RouterState {
    published: Arc<Published>,
    registry: MetricsRegistry,
    commands: Mutex<mpsc::Sender<Command>>,
    shutdown: Arc<ShutdownFlag>,
    recorder: FlightRecorder,
    tracer: Option<FlowTracer>,
    boot: Instant,
}

impl RouterState {
    /// Seconds since the daemon booted.
    fn uptime_s(&self) -> u64 {
        self.boot.elapsed().as_secs()
    }

    /// Counts the request and feeds the per-route latency histogram.
    /// Routes are recorded as their *pattern* (`/epochs/{n}/top`), never
    /// the raw path, so label cardinality stays bounded whatever clients
    /// request.
    fn observe_http(&self, req: &Request, response: &Response, elapsed: Duration) {
        let route = route_pattern(&req.path);
        let status = response.status.to_string();
        self.registry
            .counter(
                "hashflow_server_http_requests_total",
                &[("route", route), ("status", &status)],
            )
            .inc();
        self.registry
            .histogram("hashflow_server_http_latency_us", &[("route", route)])
            .observe(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }
}

/// Collapses a request path onto its route pattern (bounded label set).
fn route_pattern(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        [] => "/",
        ["epochs"] => "/epochs",
        ["epochs", _] => "/epochs/{n}",
        ["epochs", _, "top"] => "/epochs/{n}/top",
        ["epochs", _, "flows", ..] => "/epochs/{n}/flows/{key}",
        ["queries"] => "/queries",
        ["metrics"] => "/metrics",
        ["healthz"] => "/healthz",
        ["shutdown"] => "/shutdown",
        ["debug", "events"] => "/debug/events",
        ["debug", "flows", ..] => "/debug/flows/{key}",
        ["debug", "introspect"] => "/debug/introspect",
        _ => "other",
    }
}

fn not_found(what: &str) -> Response {
    Response::json(404, Obj::new().str("error", what).build())
}

fn method_not_allowed() -> Response {
    Response::json(405, Obj::new().str("error", "method not allowed").build())
}

/// Routes one request against the current published view.
fn route(state: &RouterState, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => index(),
        ("GET", ["epochs"]) => list_epochs(&state.published.load()),
        ("GET", ["epochs", n]) => one_epoch(&state.published.load(), n),
        ("GET", ["epochs", n, "top"]) => top_flows(&state.published.load(), n, req),
        ("GET", ["epochs", n, "flows", rest @ ..]) => {
            // Flow keys contain `/` (the `/proto` suffix), so the key is
            // the joined remainder of the path.
            flow_estimate(&state.published.load(), n, &rest.join("/"))
        }
        ("GET", ["queries"]) => list_queries(&state.published.load()),
        ("POST", ["queries"]) => attach_query(state, req),
        ("GET", ["metrics"]) => {
            // Refresh the uptime gauge at scrape time so it is always
            // current without a background ticker.
            state
                .registry
                .gauge("hashflow_server_uptime_seconds", &[])
                .set(state.uptime_s().min(i64::MAX as u64) as i64);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: state.registry.snapshot().to_prometheus().into_bytes(),
            }
        }
        ("GET", ["healthz"]) => healthz(&state.published.load(), state.uptime_s()),
        ("GET", ["debug", "events"]) => debug_events(state, req),
        ("GET", ["debug", "flows", rest @ ..]) => debug_flow(state, &rest.join("/")),
        ("GET", ["debug", "introspect"]) => debug_introspect(&state.published.load()),
        ("POST", ["shutdown"]) => {
            state.shutdown.trigger();
            Response::json(200, Obj::new().bool("shutting_down", true).build())
        }
        (
            _,
            []
            | ["epochs", ..]
            | ["queries"]
            | ["metrics"]
            | ["healthz"]
            | ["shutdown"]
            | ["debug", ..],
        ) => method_not_allowed(),
        _ => not_found("no such endpoint"),
    }
}

fn index() -> Response {
    let endpoints = [
        "GET /epochs",
        "GET /epochs/{n}",
        "GET /epochs/{n}/top?k=K",
        "GET /epochs/{n}/flows/{key}",
        "GET /queries",
        "POST /queries",
        "GET /metrics",
        "GET /healthz",
        "GET /debug/events?since=N",
        "GET /debug/flows/{key}",
        "GET /debug/introspect",
        "POST /shutdown",
    ];
    Response::json(
        200,
        Obj::new()
            .str("service", "hashflow-server")
            .raw(
                "endpoints",
                json::array(endpoints.iter().map(|e| json::string(e))),
            )
            .build(),
    )
}

fn epoch_summary(snapshot: &EpochSnapshot) -> String {
    Obj::new()
        .u64("epoch", snapshot.epoch())
        .opt_u64("start_ns", snapshot.start_ns())
        .opt_u64("end_ns", snapshot.end_ns())
        .u64("flows", snapshot.len() as u64)
        .f64("cardinality", snapshot.cardinality())
        .bool("partial", snapshot.is_partial())
        .build()
}

fn list_epochs(view: &SealedView) -> Response {
    Response::json(
        200,
        Obj::new()
            .u64("sealed_total", view.sealed_total)
            .u64("retained", view.epochs.len() as u64)
            .raw(
                "epochs",
                json::array(view.epochs.iter().map(|s| epoch_summary(s))),
            )
            .build(),
    )
}

fn parse_epoch<'v>(view: &'v SealedView, n: &str) -> Result<&'v Arc<EpochSnapshot>, Response> {
    let n: u64 = n.parse().map_err(|_| {
        Response::json(
            400,
            Obj::new().str("error", "epoch must be a number").build(),
        )
    })?;
    view.epoch(n)
        .ok_or_else(|| not_found("epoch not sealed or already evicted"))
}

fn one_epoch(view: &SealedView, n: &str) -> Response {
    match parse_epoch(view, n) {
        Ok(snapshot) => Response::json(200, epoch_summary(snapshot)),
        Err(resp) => resp,
    }
}

fn top_flows(view: &SealedView, n: &str, req: &Request) -> Response {
    let snapshot = match parse_epoch(view, n) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let k = req
        .query_param("k")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(10)
        .min(10_000);
    let rows = snapshot.top_k(k);
    Response::json(
        200,
        Obj::new()
            .u64("epoch", snapshot.epoch())
            .u64("k", k as u64)
            .raw(
                "flows",
                json::array(rows.iter().map(|r| {
                    Obj::new()
                        .str("key", &r.key().to_string())
                        .u64("count", u64::from(r.count()))
                        .build()
                })),
            )
            .build(),
    )
}

fn flow_estimate(view: &SealedView, n: &str, key: &str) -> Response {
    let snapshot = match parse_epoch(view, n) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    match FlowKey::from_str(key) {
        Ok(flow) => Response::json(
            200,
            Obj::new()
                .u64("epoch", snapshot.epoch())
                .str("key", &flow.to_string())
                .u64("estimate", u64::from(snapshot.estimate_size(&flow)))
                .build(),
        ),
        Err(e) => Response::json(400, Obj::new().str("error", &e.to_string()).build()),
    }
}

fn list_queries(view: &SealedView) -> Response {
    Response::json(
        200,
        Obj::new()
            .raw(
                "queries",
                json::array(view.queries.iter().map(|q| {
                    Obj::new()
                        .u64("id", q.id as u64)
                        .str("plan", &q.plan)
                        .build()
                })),
            )
            .raw(
                "answers",
                json::array(view.answers.iter().map(|a| {
                    Obj::new()
                        .u64("epoch", a.epoch)
                        .raw(
                            "results",
                            json::array(a.answers.iter().enumerate().map(|(id, r)| {
                                Obj::new()
                                    .u64("query_id", id as u64)
                                    .str("group", &r.group().to_string())
                                    .raw(
                                        "rows",
                                        json::array(r.rows().iter().map(|row| {
                                            Obj::new()
                                                .str("key", &row.key.to_string())
                                                .u64("value", row.value)
                                                .build()
                                        })),
                                    )
                                    .build()
                            })),
                        )
                        .build()
                })),
            )
            .build(),
    )
}

fn attach_query(state: &RouterState, req: &Request) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t.trim(),
        Err(_) => {
            return Response::json(400, Obj::new().str("error", "body must be UTF-8").build())
        }
    };
    let plan = match QueryPlan::from_str(text) {
        Ok(p) => p,
        Err(e) => return Response::json(400, Obj::new().str("error", &e.to_string()).build()),
    };
    let canonical = plan.to_string();
    let (reply_tx, reply_rx) = mpsc::channel();
    let sent = state
        .commands
        .lock()
        .expect("command sender poisoned")
        .send(Command::AttachQuery {
            plan,
            text: canonical.clone(),
            reply: reply_tx,
        })
        .is_ok();
    if !sent {
        return Response::json(
            503,
            Obj::new()
                .str("error", "collector is shutting down")
                .build(),
        );
    }
    match reply_rx.recv_timeout(Duration::from_secs(2)) {
        Ok(id) => Response::json(
            201,
            Obj::new()
                .u64("id", id as u64)
                .str("plan", &canonical)
                .build(),
        ),
        Err(_) => Response::json(
            503,
            Obj::new().str("error", "collector did not confirm").build(),
        ),
    }
}

fn healthz(view: &SealedView, uptime_s: u64) -> Response {
    let health = &view.health;
    let status = if health.is_unhealthy() {
        "unhealthy"
    } else if health.is_degraded() {
        "degraded"
    } else {
        "healthy"
    };
    let body = Obj::new()
        .str("status", status)
        .u64("uptime_s", uptime_s)
        .u64("sealed_epochs", view.sealed_total)
        .bool("finished", health.finished)
        .raw(
            "sinks",
            json::array(health.sinks.iter().map(|s| {
                Obj::new()
                    .u64("index", s.index as u64)
                    .str("health", s.health.label())
                    .u64("consecutive_failures", u64::from(s.consecutive_failures))
                    .u64("total_errors", s.total_errors)
                    .u64("skipped_epochs", s.skipped_epochs)
                    .u64("skipped_records", s.skipped_records)
                    .u64("recoveries", s.recoveries)
                    .raw(
                        "last_error",
                        s.last_error
                            .as_deref()
                            .map(json::string)
                            .unwrap_or_else(|| "null".to_string()),
                    )
                    .build()
            })),
        )
        .raw(
            "faults",
            json::array(health.faults.iter().map(|f| json::string(f))),
        )
        .build();
    let code = if health.is_unhealthy() { 503 } else { 200 };
    Response::json(code, body)
}

/// `GET /debug/events?since=N`: pages the flight-recorder ring by
/// sequence number. `since=0` (the default) returns the whole retained
/// window; clients resume from the `last_seq` they saw.
fn debug_events(state: &RouterState, req: &Request) -> Response {
    let since = match req.query_param("since") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                return Response::json(
                    400,
                    Obj::new().str("error", "since must be a number").build(),
                )
            }
        },
    };
    let events = state.recorder.events_since(since);
    Response::json(
        200,
        Obj::new()
            .u64("last_seq", state.recorder.last_seq())
            .u64("overwritten", state.recorder.overwritten())
            .u64("dumps", state.recorder.dumps())
            .u64("returned", events.len() as u64)
            .raw("events", json::array(events.iter().map(|e| e.to_json())))
            .build(),
    )
}

/// `GET /debug/flows/{key}`: whether the tracer samples this flow, plus
/// every span the ring still holds for it.
fn debug_flow(state: &RouterState, key: &str) -> Response {
    let flow = match FlowKey::from_str(key) {
        Ok(f) => f,
        Err(e) => return Response::json(400, Obj::new().str("error", &e.to_string()).build()),
    };
    let mut obj = Obj::new().str("key", &flow.to_string());
    obj = match &state.tracer {
        Some(t) => obj
            .bool("sampled", t.is_sampled(&flow))
            .u64("sample_one_in", t.sample_one_in()),
        None => obj.raw("sampled", "null"),
    };
    let wanted = flow.to_string();
    let spans: Vec<String> = state
        .recorder
        .snapshot()
        .into_iter()
        .filter(|e| e.kind == FLOW_SPAN_KIND && e.field("flow") == Some(wanted.as_str()))
        .map(|e| e.to_json())
        .collect();
    Response::json(
        200,
        obj.u64("spans_retained", spans.len() as u64)
            .raw("spans", json::array(spans))
            .build(),
    )
}

/// `GET /debug/introspect`: the sketch-internal metrics the monitor
/// sealed into the newest retained epoch (load factors, collision
/// counters, escalations — see `MonitorIntrospect`).
fn debug_introspect(view: &SealedView) -> Response {
    let Some(snapshot) = view.epochs.last() else {
        return not_found("no epoch sealed yet");
    };
    Response::json(
        200,
        Obj::new()
            .u64("epoch", snapshot.epoch())
            .raw(
                "metrics",
                json::array(snapshot.introspection().iter().map(|m| {
                    let obj = Obj::new().str("name", &m.name);
                    let obj = match m.value {
                        IntrospectValue::Ratio(r) => obj.str("type", "ratio").f64("value", r),
                        IntrospectValue::Count(c) => obj.str("type", "count").u64("value", c),
                        IntrospectValue::Flag(f) => obj.str("type", "flag").bool("value", f),
                    };
                    obj.str("gauge", &m.gauge_name()).build()
                })),
            )
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use hashflow_trace::{TraceGenerator, TraceProfile};

    fn small_config() -> ServerConfig {
        ServerConfig {
            epoch_ms: 40,
            retention: 4,
            http_workers: 2,
            queries: vec!["map dst | reduce count | threshold 1".to_string()],
            ..ServerConfig::default()
        }
    }

    #[test]
    fn boots_replays_seals_and_shuts_down() {
        let trace = TraceGenerator::new(TraceProfile::Caida, 5).generate(1_000);
        let total = trace.packets().len() as u64;
        let mut server = Server::start(small_config()).expect("boot");
        server.start_replay(trace.packets().to_vec(), ReplayPace::LineRate);
        assert!(server.wait_for_sealed(1, Duration::from_secs(10)));
        let report = server.shutdown();
        assert!(report.conserved(), "ledger must conserve: {report:?}");
        assert_eq!(report.offered_records, total);
        assert!(report.epochs_sealed >= 1);
        assert!(report.sink_errors.is_none());
    }

    #[test]
    fn http_api_serves_epochs_queries_and_health() {
        let trace = TraceGenerator::new(TraceProfile::Campus, 9).generate(800);
        let mut server = Server::start(small_config()).expect("boot");
        let addr = server.http_addr();
        server.start_replay(trace.packets().to_vec(), ReplayPace::LineRate);
        assert!(server.wait_for_sealed(1, Duration::from_secs(10)));

        let (status, body) = client::get(addr, "/epochs").expect("GET /epochs");
        assert_eq!(status, 200);
        assert!(body.contains("\"sealed_total\""));

        let view = server.view();
        let first = view.epochs.first().expect("one sealed epoch").epoch();
        let (status, body) =
            client::get(addr, &format!("/epochs/{first}/top?k=3")).expect("GET top");
        assert_eq!(status, 200);
        assert!(body.contains("\"flows\""));

        // A flow key straight out of the sealed snapshot estimates > 0.
        let key = view.epochs.first().unwrap().as_records()[0].key();
        let encoded = key.to_string().replace('/', "%2F").replace('>', "%3E");
        let (status, body) =
            client::get(addr, &format!("/epochs/{first}/flows/{encoded}")).expect("GET flow");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"estimate\""));

        let (status, body) = client::get(addr, "/healthz").expect("GET healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"healthy\""));

        let (status, body) = client::get(addr, "/metrics").expect("GET metrics");
        assert_eq!(status, 200);
        assert!(body.contains("hashflow_ingest_packets_total"));

        let (status, body) = client::post(
            addr,
            "/queries",
            "filter proto=6 | map src | reduce count | threshold 1",
        )
        .expect("POST query");
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"id\":1"));

        let (status, body) = client::get(addr, "/queries").expect("GET queries");
        assert_eq!(status, 200);
        assert!(body.contains("\"queries\""));

        let (status, _) = client::get(addr, "/nope").expect("GET unknown");
        assert_eq!(status, 404);
        let (status, _) = client::get(addr, "/epochs/999999/top").expect("GET evicted");
        assert_eq!(status, 404);

        let report = server.shutdown();
        assert!(report.conserved());
    }

    #[test]
    fn debug_endpoints_serve_events_flows_and_introspection() {
        let trace = TraceGenerator::new(TraceProfile::Caida, 11).generate(1_200);
        let mut server = Server::start(ServerConfig {
            trace_sampling: Some(1), // sample every flow
            // 1-in-1 sampling emits thousands of spans; keep the whole
            // run in the ring so lifecycle events survive for asserts.
            recorder_capacity: 16 * 1024,
            ..small_config()
        })
        .expect("boot");
        let addr = server.http_addr();
        server.start_replay(trace.packets().to_vec(), ReplayPace::LineRate);
        assert!(server.wait_for_sealed(1, Duration::from_secs(10)));

        let (status, body) = client::get(addr, "/debug/events").expect("GET events");
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch_sealed\""), "{body}");
        assert!(body.contains("\"flow_span\""), "{body}");

        // Paging: nothing new after the cursor the recorder reports.
        let last = server.recorder().last_seq();
        let (status, body) =
            client::get(addr, &format!("/debug/events?since={last}")).expect("GET paged");
        assert_eq!(status, 200);
        assert!(body.contains("\"returned\":0"), "{body}");
        let (status, _) = client::get(addr, "/debug/events?since=bogus").expect("GET bad cursor");
        assert_eq!(status, 400);

        // Flow debug: with 1-in-1 sampling every key reports sampled.
        let view = server.view();
        let key = view.epochs.first().unwrap().as_records()[0].key();
        let encoded = key.to_string().replace('/', "%2F").replace('>', "%3E");
        let (status, body) =
            client::get(addr, &format!("/debug/flows/{encoded}")).expect("GET flow");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"sampled\":true"), "{body}");
        assert!(body.contains("\"sample_one_in\":1"));
        let (status, _) = client::get(addr, "/debug/flows/garbage").expect("GET bad flow");
        assert_eq!(status, 400);

        // Introspection of the newest sealed epoch (HashFlow gauges).
        let (status, body) = client::get(addr, "/debug/introspect").expect("GET introspect");
        assert_eq!(status, 200);
        assert!(body.contains("main_table_load"), "{body}");
        assert!(body.contains("ancillary_load"), "{body}");

        // Self-instrumentation + build info + uptime on /metrics.
        let (status, body) = client::get(addr, "/metrics").expect("GET metrics");
        assert_eq!(status, 200);
        assert!(body.contains("hashflow_build_info"), "{body}");
        assert!(body.contains("hashflow_server_uptime_seconds"));
        assert!(body.contains("hashflow_server_http_requests_total"));
        assert!(body.contains("route=\"/debug/events\""), "{body}");
        assert!(body.contains("hashflow_server_http_latency_us"));
        assert!(body.contains("hashflow_introspect_main_table_load_ppm"));

        let (status, body) = client::get(addr, "/healthz").expect("GET healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"uptime_s\""), "{body}");

        let report = server.shutdown();
        assert!(report.conserved());
    }

    #[test]
    fn post_shutdown_triggers_the_flag() {
        let server = Server::start(small_config()).expect("boot");
        let addr = server.http_addr();
        let (status, _) = client::post(addr, "/shutdown", "").expect("POST shutdown");
        assert_eq!(status, 200);
        assert!(server.shutdown_requested());
        let report = server.shutdown();
        assert!(report.conserved());
        assert_eq!(report.packets_processed, 0);
    }

    #[test]
    fn paced_replay_is_slower_than_line_rate() {
        let trace = TraceGenerator::new(TraceProfile::Isp1, 3).generate(2_000);
        let packets: Vec<_> = trace.packets().iter().take(2_000).copied().collect();
        assert_eq!(packets.len(), 2_000, "profile yields enough packets");
        let mut server = Server::start(ServerConfig {
            epoch_ms: 10_000,
            ..small_config()
        })
        .expect("boot");
        server.start_replay(packets, ReplayPace::Pps(10_000));
        let report = {
            // Let the paced driver finish: 2 000 pkt at 10 kpps ≈ 200 ms.
            std::thread::sleep(Duration::from_millis(400));
            server.shutdown()
        };
        assert!(report.conserved());
        let replay = &report.replays[0];
        assert!(
            replay.elapsed >= Duration::from_millis(120),
            "token bucket should have paced ~200ms, took {:?}",
            replay.elapsed
        );
    }
}
