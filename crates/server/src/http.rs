//! A hand-rolled HTTP/1.1 server on `std::net` — no external crates.
//!
//! The query API's traffic is tiny (short JSON responses, a metrics
//! page) and the workspace is offline, so the server is deliberately
//! minimal: a fixed pool of worker threads each blocking on
//! `accept` against a shared listener (the kernel load-balances
//! accepts), one connection handled at a time per worker, keep-alive
//! honoured, and a routing closure supplied by the daemon. What it
//! implements of HTTP/1.1 is exactly what the endpoints and common
//! clients (curl, the bundled [`crate::client`]) need:
//!
//! * request line + headers + `Content-Length` bodies (no chunked
//!   transfer, no trailers) with hard size limits,
//! * `Connection: close` / keep-alive,
//! * percent-decoding for path segments and query parameters.
//!
//! Shutdown is cooperative: workers poll the [`ShutdownFlag`] at every
//! accept and every connection read timeout, and [`HttpPool::join`]
//! nudges workers blocked in `accept` with throwaway connections until
//! the pool's live count hits zero — the pure-`std` substitute for
//! closing the listener out from under them.

use crate::ShutdownFlag;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest accepted request line (method + path + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
const MAX_BODY: usize = 256 * 1024;
/// Read timeout on idle connections — the keep-alive poll interval for
/// the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, query string stripped (always starts
    /// with `/`).
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One response to write back.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    fn status_text(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }
}

/// Decodes `%XX` escapes (and `+` as space, form-style) in `s`;
/// malformed escapes pass through literally rather than erroring — a
/// path that was never encoded still routes.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The daemon-supplied request handler.
pub type Router = dyn Fn(&Request) -> Response + Send + Sync;

/// A running worker pool serving one listener.
#[derive(Debug)]
pub struct HttpPool {
    workers: Vec<JoinHandle<()>>,
    live: Arc<AtomicUsize>,
    addr: SocketAddr,
}

/// Spawns `workers` threads accepting on `listener` and routing through
/// `router` until `shutdown` triggers.
///
/// # Errors
///
/// Returns any I/O error from interrogating or cloning the listener.
pub fn serve(
    listener: TcpListener,
    workers: usize,
    shutdown: Arc<ShutdownFlag>,
    router: Arc<Router>,
) -> io::Result<HttpPool> {
    let addr = listener.local_addr()?;
    let workers = workers.max(1);
    let live = Arc::new(AtomicUsize::new(workers));
    let mut handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let listener = listener.try_clone()?;
        let shutdown = Arc::clone(&shutdown);
        let router = Arc::clone(&router);
        let live = Arc::clone(&live);
        handles.push(
            std::thread::Builder::new()
                .name(format!("hf-http-{i}"))
                .spawn(move || {
                    accept_loop(&listener, &shutdown, router.as_ref());
                    live.fetch_sub(1, Ordering::SeqCst);
                })
                .expect("spawn http worker"),
        );
    }
    Ok(HttpPool {
        workers: handles,
        live,
        addr,
    })
}

impl HttpPool {
    /// The bound listener address (with the real port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Joins every worker. The shutdown flag must already be triggered;
    /// workers parked in `accept` are woken with throwaway connections.
    pub fn join(self) {
        // A worker blocked in accept() consumes exactly one nudge and
        // exits; a worker mid-connection exits at its next idle poll.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), target.port());
        }
        while self.live.load(Ordering::SeqCst) > 0 {
            let _ = TcpStream::connect_timeout(&target, Duration::from_millis(100));
            std::thread::sleep(Duration::from_millis(5));
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &ShutdownFlag, router: &Router) {
    loop {
        if shutdown.is_set() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.is_set() {
                    return; // a wake-up nudge, not a client
                }
                handle_connection(stream, shutdown, router);
            }
            Err(_) => {
                if shutdown.is_set() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shutdown: &ShutdownFlag, router: &Router) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.is_set() {
            return;
        }
        // Idle poll: wait for the first byte of a request (or EOF) so a
        // read timeout here means "nothing in flight", never a
        // half-parsed request.
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        match read_request(&mut reader) {
            Ok(Some((request, keep_alive))) => {
                let response = router(&request);
                if write_response(&mut writer, &response).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                let status = if e.kind() == io::ErrorKind::InvalidData {
                    400
                } else {
                    500
                };
                let _ = write_response(&mut writer, &Response::text(status, e.to_string()));
                return;
            }
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one request. `Ok(None)` is clean EOF before a request started.
/// The boolean is whether the connection should be kept alive.
#[allow(clippy::type_complexity)]
fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<(Request, bool)>> {
    let mut line = String::new();
    if read_limited_line(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let (method, target, keep_alive) = {
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| bad("empty request line"))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| bad("missing request target"))?
            .to_string();
        let version = parts.next().unwrap_or("HTTP/1.0");
        (method, target, version == "HTTP/1.1")
    };
    let mut keep_alive = keep_alive;
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        line.clear();
        read_limited_line(reader, &mut line)?;
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| bad("unparseable content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    let query = raw_query
        .map(|q| {
            q.split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(kv), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    Ok(Some((
        Request {
            method,
            path: percent_decode(raw_path),
            query,
            body,
        },
        keep_alive,
    )))
}

/// `read_line` with the request-line/header size limit enforced.
fn read_limited_line<R: BufRead>(reader: &mut R, line: &mut String) -> io::Result<usize> {
    let n = reader.read_line(line)?;
    if line.len() > MAX_REQUEST_LINE {
        return Err(bad("request line or header too long"));
    }
    Ok(n)
}

fn write_response<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        response.status,
        Response::status_text(response.status),
        response.content_type,
        response.body.len()
    )?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Option<(Request, bool)> {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_a_get_with_query() {
        let (req, keep_alive) =
            parse("GET /epochs/3/top?k=5&x=a%20b HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/epochs/3/top");
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert!(req.body.is_empty());
        assert!(keep_alive);
    }

    #[test]
    fn parses_a_post_body_and_connection_close() {
        let (req, keep_alive) =
            parse("POST /queries HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"body");
        assert!(!keep_alive);
    }

    #[test]
    fn eof_before_a_request_is_clean() {
        assert!(parse("").is_none());
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_headers() {
        let raw = format!(
            "POST /q HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(&mut BufReader::new(raw.as_bytes())).is_err());
        assert!(read_request(&mut BufReader::new(
            "GET / HTTP/1.1\r\nbroken header\r\n\r\n".as_bytes()
        ))
        .is_err());
    }

    #[test]
    fn percent_decoding_handles_the_flow_key_form() {
        assert_eq!(
            percent_decode("10.0.0.1:80-%3E10.0.0.2:443%2F6"),
            "10.0.0.1:80->10.0.0.2:443/6"
        );
        assert_eq!(percent_decode("a%ZZb"), "a%ZZb", "bad escapes pass through");
    }

    #[test]
    fn response_renders_with_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
