//! The UDP packet-record wire format.
//!
//! A monitoring tap that exports packet records to the collector sends
//! UDP datagrams in a fixed little-endian layout — no length-prefixed
//! strings, no varints, so a datagram decodes with pure slicing:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "HFW1"
//! 4       2     record count (u16 LE)
//! 6       23*n  records
//! ```
//!
//! Each record is one [`Packet`]:
//!
//! ```text
//! offset  size  field
//! 0       13    flow key (FlowKey::to_bytes)
//! 13      8     timestamp (ns, u64 LE)
//! 21      2     wire length (u16 LE)
//! ```
//!
//! Datagrams are independent — any one decodes on its own, so loss
//! costs exactly the records inside the lost datagram and reordering
//! never corrupts state (the epoch rotation downstream is wall-clock
//! driven, not timestamp driven). A datagram that fails validation is
//! dropped whole and counted; a truncated tail record never makes the
//! preceding records unusable because the count field is checked against
//! the byte length before any record is decoded.

use hashflow_types::{FlowKey, Packet, FLOW_KEY_BYTES};

/// Magic prefix of every datagram: protocol "HashFlow Wire", version 1.
pub const MAGIC: [u8; 4] = *b"HFW1";

/// Bytes of the datagram header (magic + record count).
pub const HEADER_BYTES: usize = MAGIC.len() + 2;

/// Bytes of one encoded packet record.
pub const RECORD_BYTES: usize = FLOW_KEY_BYTES + 8 + 2;

/// Records per datagram produced by [`encode_datagrams`]: keeps the
/// datagram under 6 KiB — inside every sane UDP receive buffer and
/// loopback MTU, while still amortizing the header and the syscall.
pub const DATAGRAM_RECORDS: usize = 256;

/// Why a datagram failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`] — not our protocol.
    BadMagic,
    /// Shorter than the fixed header.
    ShortHeader {
        /// Bytes actually received.
        got: usize,
    },
    /// The header's record count disagrees with the payload length.
    LengthMismatch {
        /// Records promised by the header.
        declared: usize,
        /// Payload bytes after the header.
        payload: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "datagram does not start with HFW1"),
            WireError::ShortHeader { got } => {
                write!(f, "datagram too short for header: {got} bytes")
            }
            WireError::LengthMismatch { declared, payload } => write!(
                f,
                "header declares {declared} records but payload is {payload} bytes \
                 ({} per record)",
                RECORD_BYTES
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes up to [`u16::MAX`] packets as one datagram.
///
/// # Panics
///
/// Panics if `packets.len() > u16::MAX as usize` — use
/// [`encode_datagrams`] for arbitrary slices.
pub fn encode_datagram(packets: &[Packet]) -> Vec<u8> {
    let count = u16::try_from(packets.len()).expect("too many records for one datagram");
    let mut buf = Vec::with_capacity(HEADER_BYTES + packets.len() * RECORD_BYTES);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&count.to_le_bytes());
    for p in packets {
        buf.extend_from_slice(&p.key().to_bytes());
        buf.extend_from_slice(&p.timestamp_ns().to_le_bytes());
        buf.extend_from_slice(&p.wire_len().to_le_bytes());
    }
    buf
}

/// Encodes a packet slice as a sequence of independent datagrams of at
/// most [`DATAGRAM_RECORDS`] records each.
pub fn encode_datagrams(packets: &[Packet]) -> Vec<Vec<u8>> {
    packets
        .chunks(DATAGRAM_RECORDS)
        .map(encode_datagram)
        .collect()
}

/// Decodes one datagram into its packet records.
///
/// # Errors
///
/// Returns a [`WireError`] when the datagram is not a well-formed
/// `HFW1` frame; the caller drops (and counts) the whole datagram.
pub fn decode_datagram(buf: &[u8]) -> Result<Vec<Packet>, WireError> {
    if buf.len() < HEADER_BYTES {
        return Err(WireError::ShortHeader { got: buf.len() });
    }
    if buf[..MAGIC.len()] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let declared = usize::from(u16::from_le_bytes([buf[4], buf[5]]));
    let payload = &buf[HEADER_BYTES..];
    if payload.len() != declared * RECORD_BYTES {
        return Err(WireError::LengthMismatch {
            declared,
            payload: payload.len(),
        });
    }
    let mut packets = Vec::with_capacity(declared);
    for rec in payload.chunks_exact(RECORD_BYTES) {
        let mut key = [0u8; FLOW_KEY_BYTES];
        key.copy_from_slice(&rec[..FLOW_KEY_BYTES]);
        let mut ts = [0u8; 8];
        ts.copy_from_slice(&rec[FLOW_KEY_BYTES..FLOW_KEY_BYTES + 8]);
        let wire_len = u16::from_le_bytes([rec[RECORD_BYTES - 2], rec[RECORD_BYTES - 1]]);
        packets.push(Packet::new(
            FlowKey::from_bytes(key),
            u64::from_le_bytes(ts),
            wire_len,
        ));
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashflow_trace::{TraceGenerator, TraceProfile};

    #[test]
    fn round_trips_a_trace() {
        let trace = TraceGenerator::new(TraceProfile::Caida, 7).generate(1_000);
        let datagrams = encode_datagrams(trace.packets());
        assert!(datagrams.len() >= trace.packets().len() / DATAGRAM_RECORDS);
        let mut decoded = Vec::new();
        for d in &datagrams {
            assert!(d.len() <= HEADER_BYTES + DATAGRAM_RECORDS * RECORD_BYTES);
            decoded.extend(decode_datagram(d).unwrap());
        }
        assert_eq!(decoded, trace.packets());
    }

    #[test]
    fn empty_datagram_round_trips() {
        let d = encode_datagram(&[]);
        assert_eq!(d.len(), HEADER_BYTES);
        assert_eq!(decode_datagram(&d).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode_datagram(b"HF"),
            Err(WireError::ShortHeader { got: 2 })
        );
        assert_eq!(decode_datagram(b"NOPE\0\0"), Err(WireError::BadMagic));
        // Header claims one record, payload holds none.
        let mut d = encode_datagram(&[]);
        d[4] = 1;
        assert_eq!(
            decode_datagram(&d),
            Err(WireError::LengthMismatch {
                declared: 1,
                payload: 0
            })
        );
        // Trailing junk after the declared records.
        let trace = TraceGenerator::new(TraceProfile::Campus, 3).generate(4);
        let mut d = encode_datagram(trace.packets());
        d.push(0xFF);
        assert!(matches!(
            decode_datagram(&d),
            Err(WireError::LengthMismatch { .. })
        ));
    }
}
