//! Concurrency contract: one registry hammered from N worker threads
//! (the shard-ingestion topology) must lose no updates — counter totals
//! sum exactly, histograms account for every observation.

use hashflow_obs::MetricsRegistry;

const WORKERS: usize = 8;
const UPDATES_PER_WORKER: u64 = 10_000;

#[test]
fn counters_sum_exactly_across_workers() {
    let registry = MetricsRegistry::new();
    // A shared counter every worker contends on, plus one per-worker
    // counter each owns — the two shapes the shard layer uses.
    let shared = registry.counter("shared_total", &[]);
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let shared = shared.clone();
            let registry = registry.clone();
            scope.spawn(move || {
                let shard = w.to_string();
                let own = registry.counter("per_shard_total", &[("shard", &shard)]);
                for _ in 0..UPDATES_PER_WORKER {
                    shared.inc();
                    own.inc();
                }
            });
        }
    });
    let snap = registry.snapshot();
    let expected = WORKERS as u64 * UPDATES_PER_WORKER;
    assert_eq!(snap.counter("shared_total", &[]), Some(expected));
    assert_eq!(snap.counter_sum("per_shard_total"), expected);
    for w in 0..WORKERS {
        assert_eq!(
            snap.counter("per_shard_total", &[("shard", &w.to_string())]),
            Some(UPDATES_PER_WORKER)
        );
    }
}

#[test]
fn histogram_accounts_for_every_observation() {
    let registry = MetricsRegistry::new();
    let hist = registry.histogram("obs_ns", &[]);
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..UPDATES_PER_WORKER {
                    hist.observe(w as u64 * 1000 + i % 7);
                }
            });
        }
    });
    let expected = WORKERS as u64 * UPDATES_PER_WORKER;
    assert_eq!(hist.count(), expected);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), expected);
}

#[test]
fn concurrent_get_or_create_yields_one_metric_per_pair() {
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let registry = registry.clone();
            scope.spawn(move || {
                for i in 0..100u32 {
                    registry
                        .counter("raced", &[("i", &(i % 4).to_string())])
                        .inc();
                }
            });
        }
    });
    // 4 label sets, no duplicates despite every worker racing to create.
    assert_eq!(registry.len(), 4);
    assert_eq!(
        registry.snapshot().counter_sum("raced"),
        WORKERS as u64 * 100
    );
}
