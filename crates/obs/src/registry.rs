//! The label-aware [`MetricsRegistry`] and the point-in-time
//! [`MetricsSnapshot`] every exposition format renders from.
//!
//! Registration is the only synchronized operation (one mutex around the
//! entry list); the handles it returns are plain atomics, so the hot path
//! never touches the lock. A registry handle is itself cheap to clone and
//! share — shard workers, the rotator and the CLI all hold clones of one
//! registry and register into the same entry list.

use crate::metric::{Counter, Gauge, Histogram};
use std::sync::{Arc, Mutex};

/// Label pairs attached to a metric, e.g. `&[("shard", "3")]`.
pub type LabelSet = Vec<(String, String)>;

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: LabelSet,
    metric: Metric,
}

/// A shared, label-aware collection of metrics.
///
/// `clone()` produces another handle to the same registry (the inner
/// state is reference-counted), so one registry can be threaded through
/// the collector, the shard dispatcher and every worker without copying.
/// Lookups are get-or-create: asking twice for the same `(name, labels)`
/// pair returns handles to the same underlying metric, which makes
/// registration idempotent across epochs and re-built pipeline stages.
///
/// # Examples
///
/// ```
/// use hashflow_obs::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let packets = registry.counter("ingest_packets_total", &[]);
/// packets.add(128);
/// // A second lookup sees the same counter.
/// assert_eq!(registry.counter("ingest_packets_total", &[]).get(), 128);
/// let text = registry.snapshot().to_prometheus();
/// assert!(text.contains("ingest_packets_total 128"));
/// ```
///
/// # Panics
///
/// Re-registering a `(name, labels)` pair under a different metric type
/// (e.g. asking for a gauge where a counter lives) panics: that is a
/// programming error in the instrumentation, not a runtime condition.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

fn to_label_set(labels: &[(&str, &str)]) -> LabelSet {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T, F, G>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        extract: F,
        insert: G,
    ) -> T
    where
        F: Fn(&Metric) -> Option<T>,
        G: FnOnce() -> (Metric, T),
    {
        let labels = to_label_set(labels);
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return extract(&entry.metric).unwrap_or_else(|| {
                panic!(
                    "metric `{name}` already registered as a {}",
                    entry.metric.kind()
                )
            });
        }
        let (metric, handle) = insert();
        entries.push(Entry {
            name: name.to_string(),
            labels,
            metric,
        });
        handle
    }

    /// Returns the counter registered under `(name, labels)`, creating it
    /// at zero on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (Metric::Counter(c.clone()), c)
            },
        )
    }

    /// Returns the gauge registered under `(name, labels)`, creating it
    /// at zero on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (Metric::Gauge(g.clone()), g)
            },
        )
    }

    /// Returns the histogram registered under `(name, labels)`, creating
    /// an empty one on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (Metric::Histogram(h.clone()), h)
            },
        )
    }

    /// Registers an *existing* counter handle under `(name, labels)`, so
    /// state that predates the registry (e.g. a sink's drop counters) is
    /// exposed without copying. Returns a handle to the registered
    /// counter — the given one, or the already-registered one if the pair
    /// exists (the caller's handle is dropped in that case).
    pub fn register_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        counter: Counter,
    ) -> Counter {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            move || (Metric::Counter(counter.clone()), counter),
        )
    }

    /// Registers an existing histogram handle; see
    /// [`Self::register_counter`] for the adoption semantics.
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        histogram: Histogram,
    ) -> Histogram {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            move || (Metric::Histogram(histogram.clone()), histogram),
        )
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Captures every registered metric's current value into an immutable
    /// [`MetricsSnapshot`], sorted by `(name, labels)`.
    ///
    /// Both exposition formats render from the same snapshot, so a report
    /// printed from it and a file exported from it can never disagree.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut samples: Vec<MetricSample> = entries
            .iter()
            .map(|e| MetricSample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(HistogramSnapshot {
                        buckets: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    }),
                },
            })
            .collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { samples }
    }
}

/// One metric's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name, e.g. `hashflow_ingest_packets_total`.
    pub name: String,
    /// Label pairs in registration order.
    pub labels: LabelSet,
    /// The captured value.
    pub value: SampleValue,
}

/// The captured value of a [`MetricSample`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// A cumulative count.
    Counter(u64),
    /// An instantaneous level.
    Gauge(i64),
    /// A bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// A histogram's state at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts, one per
    /// [`crate::HISTOGRAM_BUCKETS`] log2 bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q`, computed from the captured buckets the
    /// same way [`Histogram::value_at_quantile`] computes it from the
    /// live ones. `None` when the snapshot holds no observations.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        crate::metric::quantile_from_buckets(&self.buckets, q)
    }
}

/// An immutable point-in-time capture of a registry.
///
/// Produced by [`MetricsRegistry::snapshot`]; rendered by
/// [`Self::to_prometheus`] and [`Self::to_jsonl`] (both defined in the
/// exposition module).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub(crate) samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// The captured samples, sorted by `(name, labels)`.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Looks up a counter value by name and labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let labels = to_label_set(labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .and_then(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// Looks up a gauge value by name and labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let labels = to_label_set(labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .and_then(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Sums a counter across every label combination it was registered
    /// under (e.g. total packets over all shards).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match s.value {
                SampleValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_is_idempotent_per_label_set() {
        let r = MetricsRegistry::new();
        let a = r.counter("pkts", &[("shard", "0")]);
        let b = r.counter("pkts", &[("shard", "0")]);
        let c = r.counter("pkts", &[("shard", "1")]);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn clones_share_the_entry_list() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter("a", &[]).inc();
        assert_eq!(r2.snapshot().counter("a", &[]), Some(1));
    }

    #[test]
    fn register_existing_counter_exposes_prior_state() {
        let r = MetricsRegistry::new();
        let c = Counter::new();
        c.add(7);
        let adopted = r.register_counter("drops", &[("component", "sink")], c.clone());
        assert!(adopted.same_as(&c));
        // Re-registering the same pair keeps the first handle.
        let other = Counter::new();
        let kept = r.register_counter("drops", &[("component", "sink")], other);
        assert!(kept.same_as(&c));
        assert_eq!(
            r.snapshot().counter("drops", &[("component", "sink")]),
            Some(7)
        );
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn type_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }

    #[test]
    fn snapshot_sorts_and_sums() {
        let r = MetricsRegistry::new();
        r.counter("z", &[]).add(1);
        r.counter("a", &[("shard", "1")]).add(2);
        r.counter("a", &[("shard", "0")]).add(3);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.samples().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "a", "z"]);
        assert_eq!(snap.counter_sum("a"), 5);
        assert_eq!(snap.counter("a", &[("shard", "0")]), Some(3));
        assert_eq!(snap.counter("missing", &[]), None);
    }
}
