//! The three metric primitives: [`Counter`], [`Gauge`] and [`Histogram`],
//! plus the [`ScopedTimer`] guard that feeds histograms.
//!
//! All three are cheap cloneable *handles* over shared atomic state: a
//! clone observes (and updates) the same underlying values, which is what
//! lets one handle live inside a shard worker thread while the registry
//! keeps another for exposition. Updates use relaxed atomics only — the
//! hot path pays one uncontended read-modify-write per update and nothing
//! else (no locks, no allocation, no global state).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count (packets ingested, epochs
/// sealed, answers dropped).
///
/// # Examples
///
/// ```
/// use hashflow_obs::Counter;
///
/// let c = Counter::new();
/// let handle = c.clone(); // same underlying count
/// handle.inc();
/// handle.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero. Exposition treats counters as cumulative, so this
    /// is only for components whose own `reset()` contract requires
    /// clearing accumulated state (scrape consumers handle counter resets
    /// the same way they handle process restarts).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Whether `other` is a handle to this same underlying counter.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A value that can go up and down (queue depth, live epoch number).
///
/// # Examples
///
/// ```
/// use hashflow_obs::Gauge;
///
/// let g = Gauge::new();
/// g.set(7);
/// g.sub(2);
/// g.add(1);
/// assert_eq!(g.get(), 6);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` to the gauge.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per power
/// of two up to `2^63`, with the last bucket catching everything above.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket log2 histogram of `u64` observations (latencies in
/// nanoseconds, batch sizes).
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`; the last bucket holds everything from `2^63` up. An
/// observation is three relaxed atomic adds into a fixed array — no
/// locks, no allocation — so histograms are safe on per-batch hot paths
/// and across shard worker threads.
///
/// # Examples
///
/// ```
/// use hashflow_obs::Histogram;
///
/// let h = Histogram::new();
/// h.observe(0); // bucket 0
/// h.observe(5); // [4, 8) -> bucket 3
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Index of the bucket holding `value`: `0` for zero, else
    /// `floor(log2(value)) + 1`, saturating at the last bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of bucket `index` (`u64::MAX` for the last).
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let i = Self::bucket_index(value);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a [`ScopedTimer`] that records the elapsed nanoseconds into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> ScopedTimer {
        ScopedTimer {
            histogram: self.clone(),
            start: Instant::now(),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts (not cumulative).
    ///
    /// Reads are relaxed and per-cell, so a snapshot taken while writers
    /// are active may be torn across cells; totals reconcile once writers
    /// quiesce.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Whether `other` is a handle to this same underlying histogram.
    pub fn same_as(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The value at quantile `q` in `[0, 1]`, as the inclusive upper
    /// bound of the log2 bucket holding the `ceil(q·count)`-th smallest
    /// observation — an upper estimate with at most one-bucket (2×)
    /// resolution, like any fixed-bucket quantile. `q <= 0` answers from
    /// the first non-empty bucket, `q >= 1` from the last. Returns `None`
    /// when the histogram is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use hashflow_obs::Histogram;
    ///
    /// let h = Histogram::new();
    /// for v in [1u64, 2, 3, 1000] {
    ///     h.observe(v);
    /// }
    /// assert_eq!(h.value_at_quantile(0.5), Some(3)); // bucket [2, 4)
    /// assert_eq!(h.value_at_quantile(0.99), Some(1023)); // bucket [512, 1024)
    /// ```
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.bucket_counts(), q)
    }
}

/// Shared quantile walk over per-bucket (non-cumulative) log2 counts —
/// the single implementation behind [`Histogram::value_at_quantile`] and
/// [`crate::HistogramSnapshot::value_at_quantile`], so live handles and
/// snapshots can never disagree.
pub(crate) fn quantile_from_buckets(buckets: &[u64], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target observation, 1-based: ceil(q * total), clamped
    // so q = 0 still lands on the first observation.
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        if cumulative >= target {
            return Some(Histogram::bucket_upper_bound(i.min(HISTOGRAM_BUCKETS - 1)));
        }
    }
    Some(u64::MAX)
}

/// A drop guard that measures a scope's wall-clock duration and records
/// it (in nanoseconds) into a [`Histogram`].
///
/// Purely `Instant`-based: no thread-locals, no global clock state, so
/// timers on different shard workers never interfere.
///
/// # Examples
///
/// ```
/// use hashflow_obs::Histogram;
///
/// let h = Histogram::new();
/// {
///     let _timer = h.start_timer();
///     // ... timed work ...
/// } // timer drops here and records the elapsed nanoseconds
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Histogram,
    start: Instant,
}

impl ScopedTimer {
    /// Stops the timer early, recording the elapsed nanoseconds now.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        self.histogram
            .observe(u64::try_from(elapsed).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let c = Counter::new();
        let h = c.clone();
        c.inc();
        h.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(h.get(), 10);
        assert!(c.same_as(&h));
        assert!(!c.same_as(&Counter::new()));
        c.reset();
        assert_eq!(h.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(8);
        assert_eq!(g.get(), -3);
        g.set(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn log2_bucket_boundaries() {
        // Bucket 0 is exactly the value zero.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Bucket i >= 1 covers [2^(i-1), 2^i): both edges land where the
        // closed-form says they must.
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            let hi = Histogram::bucket_upper_bound(i);
            assert_eq!(hi, (1u64 << i) - 1);
            assert_eq!(Histogram::bucket_index(hi), i, "upper edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(hi + 1),
                i + 1,
                "first value past bucket {i}"
            );
        }
        // The last bucket saturates at u64::MAX.
        assert_eq!(Histogram::bucket_index(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_accumulates_sum_count_and_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[3], 1); // 4
        assert_eq!(buckets[10], 1); // 1000 in [512, 1024)
        assert_eq!(buckets.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn quantiles_at_bucket_edges() {
        let h = Histogram::new();
        assert_eq!(h.value_at_quantile(0.5), None, "empty histogram");
        // 4 observations: 0 (bucket 0), 1 (bucket 1), 8 (bucket 4,
        // upper bound 15), 1u64<<63 (last bucket, unbounded).
        for v in [0u64, 1, 8, 1u64 << 63] {
            h.observe(v);
        }
        // Rank math: ceil(q*4) picks observation #1..#4.
        assert_eq!(h.value_at_quantile(0.0), Some(0), "q=0 is the minimum");
        assert_eq!(h.value_at_quantile(0.25), Some(0), "rank 1");
        assert_eq!(h.value_at_quantile(0.26), Some(1), "rank 2");
        assert_eq!(h.value_at_quantile(0.5), Some(1), "rank 2 exactly");
        assert_eq!(h.value_at_quantile(0.75), Some(15), "rank 3: [8,16)");
        assert_eq!(h.value_at_quantile(0.76), Some(u64::MAX), "last bucket");
        assert_eq!(h.value_at_quantile(1.0), Some(u64::MAX));
        assert_eq!(h.value_at_quantile(2.0), Some(u64::MAX), "clamped above");
        assert_eq!(h.value_at_quantile(-1.0), Some(0), "clamped below");
    }

    #[test]
    fn quantile_within_one_bucket_of_exact() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // p50 exact = 500, bucket [256, 512) upper bound 511.
        assert_eq!(h.value_at_quantile(0.5), Some(511));
        // p99 exact = 990, bucket [512, 1024) upper bound 1023.
        assert_eq!(h.value_at_quantile(0.99), Some(1023));
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let h = Histogram::new();
        h.start_timer().stop();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 2);
    }
}
