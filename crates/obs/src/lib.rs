//! Runtime self-telemetry for the collector pipeline.
//!
//! This crate is the *runtime* counterpart of `hashflow-metrics` (which
//! scores measurement **accuracy**: ARE, FSC, F1). It answers the
//! operational questions a continuously-running collector gets asked —
//! how many packets and bytes were ingested, how long epoch seals and
//! sink exports take, how deep the shard queues run, what was dropped —
//! without perturbing the hot path it observes:
//!
//! * [`Counter`] / [`Gauge`] — one relaxed atomic read-modify-write per
//!   update, cloneable handles over shared state;
//! * [`Histogram`] — fixed-array log2 buckets, lock-free, fed directly
//!   or via the [`ScopedTimer`] drop guard;
//! * [`MetricsRegistry`] — label-aware get-or-create registration; the
//!   lock guards registration only, never the update path;
//! * [`MetricsSnapshot`] — a point-in-time capture rendered as
//!   Prometheus text ([`MetricsSnapshot::to_prometheus`]) or JSONL
//!   ([`MetricsSnapshot::to_jsonl`]); both formats read the same
//!   snapshot, so they can never disagree;
//! * [`FlightRecorder`] — a bounded overwrite-oldest ring of structured
//!   [`Event`]s (the *what happened, in what order* counterpart of the
//!   metrics above), with automatic JSONL dumps on fault transitions.
//!
//! The crate is dependency-free (std only) and sits below every pipeline
//! crate, so any stage — monitor, shard, rotator, sink, query, CLI — can
//! be instrumented without dependency cycles.
//!
//! # Examples
//!
//! ```
//! use hashflow_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let packets = registry.counter("ingest_packets_total", &[]);
//! let seal_ns = registry.histogram("seal_ns", &[]);
//!
//! packets.add(256);
//! {
//!     let _timer = seal_ns.start_timer();
//!     // ... seal an epoch ...
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("ingest_packets_total", &[]), Some(256));
//! println!("{}", snapshot.to_prometheus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod expose;
mod metric;
mod registry;

pub use event::{Event, FlightRecorder, Severity, DEFAULT_RECORDER_CAPACITY};
pub use metric::{Counter, Gauge, Histogram, ScopedTimer, HISTOGRAM_BUCKETS};
pub use registry::{
    HistogramSnapshot, LabelSet, MetricSample, MetricsRegistry, MetricsSnapshot, SampleValue,
};
