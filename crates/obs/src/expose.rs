//! Exposition: rendering a [`MetricsSnapshot`] as Prometheus text format
//! or as JSONL (one JSON object per metric, following the workspace's
//! line-oriented sink conventions).
//!
//! Both renderers consume the *same* snapshot, so the two formats always
//! carry identical values — there is no second read of live atomics that
//! could race ahead. Histograms render identically in both: per-bucket
//! cumulative counts keyed by the inclusive log2 upper bound (`le`),
//! empty buckets skipped, a `+Inf` bucket equal to the total count, plus
//! `sum` and `count`.

use crate::metric::Histogram;
use crate::registry::{HistogramSnapshot, MetricsSnapshot, SampleValue};
use std::fmt::Write as _;

/// The cumulative `(le, count)` pairs both formats expose for a
/// histogram: non-empty log2 buckets keyed by inclusive upper bound, then
/// `("+Inf", total)`.
fn cumulative_buckets(h: &HistogramSnapshot) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        // The last bucket is unbounded; it is covered by +Inf below.
        if i + 1 < h.buckets.len() {
            out.push((Histogram::bucket_upper_bound(i).to_string(), cumulative));
        }
    }
    out.push(("+Inf".to_string(), h.count));
    out
}

fn prom_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` including the braces; empty labels render as "".
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", prom_escape(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

pub(crate) fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// # Examples
    ///
    /// ```
    /// use hashflow_obs::MetricsRegistry;
    ///
    /// let r = MetricsRegistry::new();
    /// r.counter("pkts_total", &[("shard", "0")]).add(3);
    /// let text = r.snapshot().to_prometheus();
    /// assert!(text.contains("# TYPE pkts_total counter"));
    /// assert!(text.contains("pkts_total{shard=\"0\"} 3"));
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in self.samples() {
            let kind = match sample.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            if last_name != Some(sample.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", sample.name, kind);
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {v}",
                        sample.name,
                        prom_labels(&sample.labels, None)
                    );
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {v}",
                        sample.name,
                        prom_labels(&sample.labels, None)
                    );
                }
                SampleValue::Histogram(h) => {
                    for (le, cumulative) in cumulative_buckets(h) {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            sample.name,
                            prom_labels(&sample.labels, Some(("le", &le)))
                        );
                    }
                    let suffix = prom_labels(&sample.labels, None);
                    let _ = writeln!(out, "{}_sum{suffix} {}", sample.name, h.sum);
                    let _ = writeln!(out, "{}_count{suffix} {}", sample.name, h.count);
                }
            }
        }
        out
    }

    /// Renders the snapshot as JSONL: one JSON object per metric, in the
    /// same `(name, labels)` order as [`Self::to_prometheus`], carrying
    /// the same values (histogram buckets are the same cumulative
    /// `le`-keyed counts).
    ///
    /// # Examples
    ///
    /// ```
    /// use hashflow_obs::MetricsRegistry;
    ///
    /// let r = MetricsRegistry::new();
    /// r.gauge("queue_depth", &[]).set(4);
    /// let line = r.snapshot().to_jsonl();
    /// assert_eq!(
    ///     line.trim(),
    ///     r#"{"name":"queue_depth","labels":{},"type":"gauge","value":4}"#
    /// );
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for sample in self.samples() {
            let name = json_escape(&sample.name);
            let labels = json_labels(&sample.labels);
            match &sample.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"labels\":{labels},\"type\":\"counter\",\"value\":{v}}}"
                    );
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"labels\":{labels},\"type\":\"gauge\",\"value\":{v}}}"
                    );
                }
                SampleValue::Histogram(h) => {
                    let buckets: Vec<String> = cumulative_buckets(h)
                        .into_iter()
                        .map(|(le, c)| format!("{{\"le\":\"{le}\",\"count\":{c}}}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"labels\":{labels},\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        buckets.join(",")
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("pkts_total", &[("shard", "0")]).add(100);
        r.counter("pkts_total", &[("shard", "1")]).add(50);
        r.gauge("depth", &[]).set(-2);
        let h = r.histogram("lat_ns", &[]);
        for v in [0u64, 1, 5, 5, 900] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn prometheus_renders_types_labels_and_cumulative_buckets() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE pkts_total counter"));
        assert!(text.contains("pkts_total{shard=\"0\"} 100"));
        assert!(text.contains("pkts_total{shard=\"1\"} 50"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        // 0 -> le=0 (1), 1 -> le=1 (2), 5,5 -> le=7 (4), 900 -> le=1023 (5)
        assert!(text.contains("lat_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"7\"} 4"));
        assert!(text.contains("lat_ns_bucket{le=\"1023\"} 5"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_ns_sum 911"));
        assert!(text.contains("lat_ns_count 5"));
        // TYPE emitted once per name even with several label sets.
        assert_eq!(text.matches("# TYPE pkts_total").count(), 1);
    }

    #[test]
    fn jsonl_renders_one_object_per_metric() {
        let lines = sample_registry().snapshot().to_jsonl();
        let lines: Vec<&str> = lines.lines().collect();
        assert_eq!(lines.len(), 4); // 2 counters + 1 gauge + 1 histogram
        assert!(lines.contains(&r#"{"name":"depth","labels":{},"type":"gauge","value":-2}"#));
        assert!(lines.iter().any(|l| l.contains(
            r#"{"name":"pkts_total","labels":{"shard":"1"},"type":"counter","value":50}"#
        )));
        let hist = lines.iter().find(|l| l.contains("histogram")).unwrap();
        assert!(hist.contains(r#""count":5,"sum":911"#));
        assert!(hist.contains(r#"{"le":"+Inf","count":5}"#));
    }

    #[test]
    fn prometheus_and_jsonl_expose_identical_values() {
        // Both formats render from one snapshot; cross-check every value
        // of one format against the other.
        let snap = sample_registry().snapshot();
        let prom = snap.to_prometheus();
        let jsonl = snap.to_jsonl();
        // Counter/gauge values present in prom appear verbatim in jsonl.
        assert!(prom.contains("pkts_total{shard=\"0\"} 100"));
        assert!(jsonl.contains(r#""shard":"0"},"type":"counter","value":100}"#));
        // Histogram buckets carry the same (le, cumulative) pairs.
        for (le, c) in [("0", 1u64), ("1", 2), ("7", 4), ("1023", 5), ("+Inf", 5)] {
            assert!(prom.contains(&format!("lat_ns_bucket{{le=\"{le}\"}} {c}")));
            assert!(jsonl.contains(&format!(r#"{{"le":"{le}","count":{c}}}"#)));
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter("c", &[("path", "a\"b\\c\nd")]).inc();
        let prom = r.snapshot().to_prometheus();
        assert!(prom.contains(r#"c{path="a\"b\\c\nd"} 1"#));
        let jsonl = r.snapshot().to_jsonl();
        assert!(jsonl.contains(r#""path":"a\"b\\c\nd""#));
    }
}
