//! The structured event log and its bounded [`FlightRecorder`] ring.
//!
//! Metrics answer *how much*; events answer *what happened, in what
//! order*. The recorder is the pipeline's black box: every stage appends
//! timestamped, severity-tagged structured [`Event`]s (epoch sealed, sink
//! quarantined, shard panicked, batch shed) into one bounded
//! overwrite-oldest ring, cheap enough to leave on in production. When a
//! fault transition fires, [`FlightRecorder::dump`] writes the recent
//! window as JSONL to a pre-attached writer, so the post-mortem exists
//! even if nobody was tailing a log when the fault hit.
//!
//! All appends go through one mutex, which buys the three properties the
//! ring promises under concurrent writers: sequence numbers are assigned
//! in one critical section (strictly monotone, no gaps until overwrite),
//! an event is stored whole or not at all (no torn events), and the ring
//! never exceeds its capacity (the oldest event is evicted and counted).
//!
//! # Examples
//!
//! ```
//! use hashflow_obs::{FlightRecorder, Severity};
//!
//! let recorder = FlightRecorder::with_capacity(128);
//! recorder.record(Severity::Info, "epoch_sealed", "epoch 7 sealed");
//! recorder.record_with(
//!     Severity::Error,
//!     "sink_quarantined",
//!     "sink 0 quarantined",
//!     vec![("sink".to_string(), "0".to_string())],
//! );
//! let events = recorder.events_since(0);
//! assert_eq!(events.len(), 2);
//! assert!(events[0].seq < events[1].seq);
//! ```

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::expose::json_escape;

/// Default ring capacity of [`FlightRecorder::new`]: enough for the
/// recent history of a busy pipeline without holding a visible amount of
/// memory (events are small; the ring is bounded in *events*, not bytes).
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

/// How serious an [`Event`] is. Ordered: `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume diagnostics (per-flow trace spans).
    Debug,
    /// Normal lifecycle (epoch sealed, sink recovered).
    Info,
    /// Degradation that self-heals (sink export error, batch shed).
    Warn,
    /// A fault transition (sink quarantined, shard panicked).
    Error,
}

impl Severity {
    /// Lowercase label used in exposition (`"debug"` .. `"error"`).
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One structured entry in the flight-recorder ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Strictly monotone sequence number (1-based), assigned at record
    /// time under the ring lock — the cursor `events_since` pages by.
    pub seq: u64,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// How serious the event is.
    pub severity: Severity,
    /// Stable machine-readable event kind (e.g. `"sink_quarantined"`).
    pub kind: &'static str,
    /// Human-readable one-liner.
    pub message: String,
    /// Structured key/value context (e.g. `("sink", "0")`).
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// The value of `name` among the event's structured fields.
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the event as one self-describing JSON object (no trailing
    /// newline) — the line format of [`FlightRecorder::dump`].
    pub fn to_json(&self) -> String {
        let mut fields = String::new();
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                fields.push(',');
            }
            fields.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        format!(
            "{{\"seq\":{},\"unix_ms\":{},\"severity\":\"{}\",\"kind\":\"{}\",\
             \"message\":\"{}\",\"fields\":{{{}}}}}",
            self.seq,
            self.unix_ms,
            self.severity.label(),
            json_escape(self.kind),
            json_escape(&self.message),
            fields,
        )
    }
}

#[derive(Debug)]
struct RecorderState {
    ring: VecDeque<Event>,
    next_seq: u64,
    overwritten: u64,
    dumps: u64,
}

struct RecorderInner {
    capacity: usize,
    state: Mutex<RecorderState>,
    dump_writer: Mutex<Option<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for RecorderInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderInner")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// A bounded, overwrite-oldest ring of structured [`Event`]s — the
/// pipeline's flight recorder (see the module docs).
///
/// Cloning produces another handle to the same ring, so one recorder can
/// be threaded through the rotator, the sink set, every shard worker and
/// the HTTP server, all appending into one ordered history.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the [`DEFAULT_RECORDER_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A recorder holding at most `capacity` events (at least 1); the
    /// oldest event is overwritten (and counted) once the ring is full.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                capacity,
                state: Mutex::new(RecorderState {
                    ring: VecDeque::with_capacity(capacity),
                    next_seq: 1,
                    overwritten: 0,
                    dumps: 0,
                }),
                dump_writer: Mutex::new(None),
            }),
        }
    }

    /// Maximum events the ring retains.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.inner.state.lock().expect("flight recorder poisoned")
    }

    /// Appends one event without structured fields; returns its sequence
    /// number.
    pub fn record(
        &self,
        severity: Severity,
        kind: &'static str,
        message: impl Into<String>,
    ) -> u64 {
        self.record_with(severity, kind, message, Vec::new())
    }

    /// Appends one event with structured fields; returns its sequence
    /// number. The event is stored whole under the ring lock — readers
    /// never observe a partially-written event.
    pub fn record_with(
        &self,
        severity: Severity,
        kind: &'static str,
        message: impl Into<String>,
        fields: Vec<(String, String)>,
    ) -> u64 {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let mut state = self.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.ring.len() == self.inner.capacity {
            state.ring.pop_front();
            state.overwritten += 1;
        }
        state.ring.push_back(Event {
            seq,
            unix_ms,
            severity,
            kind,
            message: message.into(),
            fields,
        });
        seq
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.lock().ring.is_empty()
    }

    /// Events evicted by the overwrite-oldest policy so far.
    pub fn overwritten(&self) -> u64 {
        self.lock().overwritten
    }

    /// Sequence number of the most recent event (0 when none recorded).
    pub fn last_seq(&self) -> u64 {
        self.lock().next_seq - 1
    }

    /// A copy of every retained event, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Retained events with `seq > since`, oldest first — the paging
    /// contract of `GET /debug/events?since=seq` (`since = 0` returns
    /// everything still in the ring).
    pub fn events_since(&self, since: u64) -> Vec<Event> {
        self.lock()
            .ring
            .iter()
            .filter(|e| e.seq > since)
            .cloned()
            .collect()
    }

    /// Attaches the writer automatic fault dumps go to (a file, a socket,
    /// a `Vec<u8>` in tests). Replaces any previous writer.
    pub fn set_dump_writer(&self, writer: Box<dyn Write + Send>) {
        *self.inner.dump_writer.lock().expect("dump writer poisoned") = Some(writer);
    }

    /// Whether a dump writer is attached.
    pub fn has_dump_writer(&self) -> bool {
        self.inner
            .dump_writer
            .lock()
            .expect("dump writer poisoned")
            .is_some()
    }

    /// Dumps triggered so far (attempted, writer attached or not).
    pub fn dumps(&self) -> u64 {
        self.lock().dumps
    }

    /// Writes the current window to `writer` as JSONL: one header object
    /// carrying `reason` and the ring's bookkeeping, then one line per
    /// retained event, oldest first.
    ///
    /// # Errors
    ///
    /// Returns any I/O error of `writer`.
    pub fn dump_to<W: Write>(&self, reason: &str, writer: &mut W) -> io::Result<()> {
        // Copy the window out first so writer latency never extends the
        // time the recording path is blocked.
        let (events, overwritten) = {
            let state = self.lock();
            (
                state.ring.iter().cloned().collect::<Vec<_>>(),
                state.overwritten,
            )
        };
        writeln!(
            writer,
            "{{\"flight_recorder_dump\":\"{}\",\"events\":{},\"overwritten\":{}}}",
            json_escape(reason),
            events.len(),
            overwritten,
        )?;
        for event in &events {
            writeln!(writer, "{}", event.to_json())?;
        }
        writer.flush()
    }

    /// Triggers an automatic post-mortem dump: writes the current window
    /// to the attached dump writer (see [`Self::set_dump_writer`]) and
    /// counts the attempt. Returns `true` iff a writer was attached and
    /// the write succeeded. A dump must never take the pipeline down, so
    /// I/O errors are swallowed (the failed dump is still counted).
    pub fn dump(&self, reason: &str) -> bool {
        self.lock().dumps += 1;
        let mut guard = self.inner.dump_writer.lock().expect("dump writer poisoned");
        match guard.as_mut() {
            Some(writer) => self.dump_to(reason, writer).is_ok(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotone_seq() {
        let r = FlightRecorder::with_capacity(8);
        assert!(r.is_empty());
        assert_eq!(r.last_seq(), 0);
        let a = r.record(Severity::Info, "epoch_sealed", "sealed 1");
        let b = r.record(Severity::Warn, "batch_shed", "shed 256");
        assert_eq!((a, b), (1, 2));
        let events = r.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "epoch_sealed");
        assert_eq!(events[1].severity, Severity::Warn);
        assert_eq!(r.last_seq(), 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let r = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            r.record(Severity::Info, "tick", format!("tick {i}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        let seqs: Vec<u64> = r.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
    }

    #[test]
    fn events_since_pages_by_cursor() {
        let r = FlightRecorder::with_capacity(16);
        for i in 0..6 {
            r.record(Severity::Info, "tick", format!("tick {i}"));
        }
        assert_eq!(r.events_since(0).len(), 6);
        assert_eq!(r.events_since(4).len(), 2);
        assert!(r.events_since(6).is_empty());
        assert!(r.events_since(99).is_empty());
    }

    #[test]
    fn event_json_escapes_and_carries_fields() {
        let r = FlightRecorder::new();
        r.record_with(
            Severity::Error,
            "sink_quarantined",
            "sink \"0\" down",
            vec![("sink".to_string(), "0".to_string())],
        );
        let e = &r.snapshot()[0];
        assert_eq!(e.field("sink"), Some("0"));
        assert_eq!(e.field("missing"), None);
        let json = e.to_json();
        assert!(json.contains(r#""kind":"sink_quarantined""#));
        assert!(json.contains(r#""message":"sink \"0\" down""#));
        assert!(json.contains(r#""fields":{"sink":"0"}"#));
        assert!(json.contains(r#""severity":"error""#));
    }

    #[test]
    fn dump_writes_header_then_events() {
        let r = FlightRecorder::with_capacity(2);
        for i in 0..3 {
            r.record(Severity::Info, "tick", format!("tick {i}"));
        }
        let mut out = Vec::new();
        r.dump_to("test", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""flight_recorder_dump":"test","events":2,"overwritten":1"#));
        assert!(lines[1].contains(r#""seq":2"#));
        assert!(lines[2].contains(r#""seq":3"#));
    }

    #[test]
    fn auto_dump_goes_to_the_attached_writer() {
        let r = FlightRecorder::new();
        r.record(Severity::Error, "shard_panic", "worker 2 panicked");
        assert!(!r.dump("no writer attached"));
        assert_eq!(r.dumps(), 1);

        // A shared Vec<u8> writer so the test can read back what the
        // recorder wrote after handing the Box over.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = Shared::default();
        r.set_dump_writer(Box::new(sink.clone()));
        assert!(r.has_dump_writer());
        assert!(r.dump("quarantine"));
        assert_eq!(r.dumps(), 2);
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains(r#""flight_recorder_dump":"quarantine""#));
        assert!(text.contains("shard_panic"));
    }

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
        assert_eq!(Severity::Debug.label(), "debug");
    }

    #[test]
    fn clones_share_the_ring() {
        let r = FlightRecorder::with_capacity(4);
        let r2 = r.clone();
        r.record(Severity::Info, "a", "from r");
        r2.record(Severity::Info, "b", "from r2");
        assert_eq!(r.len(), 2);
        assert_eq!(r2.last_seq(), 2);
    }
}
